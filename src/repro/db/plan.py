"""Physical query plan operators (Volcano-style iterators).

The planner compiles expressions at build time, so operators hold plain
callables and iterate tuples.  Each operator exposes its output
:class:`~repro.db.result.RowLayout` and an ``execute()`` generator, plus
an ``explain()`` line used by tests and diagnostics.
"""

from __future__ import annotations

import heapq
import threading
from collections import defaultdict
from collections.abc import Callable, Iterator
from contextlib import nullcontext
from itertools import islice

from repro.db.expr import (
    Evaluator,
    MemoKey,
    UDFCallError,
    UDFCallSite,
    is_true,
)
from repro.db.functions import AggregateSpec
from repro.db.result import Row, RowLayout
from repro.db.shard import (
    PartitionSpec,
    ShardContext,
    ShardDedup,
    ShardRowError,
    ShardRuntime,
    merge_cache_events,
    next_shard_thread_name,
)
from repro.db.table import Table
from repro.db.types import SQLValue, sort_key
from repro.db.udfcache import UDFMemoCache
from repro.errors import ExecutionError
from repro.obs import racecheck


class PlanNode:
    """Base class for plan operators."""

    layout: RowLayout

    def execute(self) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """This node's one-line ``explain()`` label (public surface for
        diagnostics layers like :mod:`repro.obs.explain`)."""
        return self._describe()

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["PlanNode"]:
        return []


class Scan(PlanNode):
    """Full scan of a stored table under a binding (alias)."""

    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding
        self.layout = RowLayout(
            [(binding, name) for name in table.schema.column_names]
        )

    def execute(self) -> Iterator[Row]:
        yield from self.table

    def _describe(self) -> str:
        return f"Scan({self.table.schema.name} AS {self.binding})"


class IndexLookup(PlanNode):
    """Point lookup via a table's hash index (``col = literal``)."""

    def __init__(self, table: Table, binding: str, column: str, value: SQLValue):
        self.table = table
        self.binding = binding
        self.column = column
        self.value = value
        self.layout = RowLayout(
            [(binding, name) for name in table.schema.column_names]
        )

    def execute(self) -> Iterator[Row]:
        yield from self.table.lookup(self.column, self.value)

    def _describe(self) -> str:
        return (
            f"IndexLookup({self.table.schema.name} AS {self.binding}, "
            f"{self.column} = {self.value!r})"
        )


class Filter(PlanNode):
    def __init__(
        self, child: PlanNode, predicate: Evaluator, label: str = ""
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.execute():
            if is_true(predicate(row)):
                yield row

    def _describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Project(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        evaluators: list[Evaluator],
        layout: RowLayout,
    ) -> None:
        self.child = child
        self.evaluators = evaluators
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        evaluators = self.evaluators
        for row in self.child.execute():
            yield tuple(evaluate(row) for evaluate in evaluators)

    def _describe(self) -> str:
        return f"Project({', '.join(self.layout.names)})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class UDFExecContext:
    """Shared execution context for the batched UDF operators.

    Carries the :class:`~repro.db.Database`'s cross-statement memo
    cache plus optional mirrors: a :class:`~repro.lm.usage.Usage`
    (its ``udf_cache_hits``/``udf_cache_misses`` fields) and a metrics
    registry (duck-typed ``counter(name).inc(n)``).  Each operator owns
    an ``exec_stats`` dict surfaced by EXPLAIN ANALYZE; :meth:`tally`
    is the single meter — every increment lands in the operator's
    stats and is mirrored to the bound sinks, so the three surfaces can
    never disagree.
    """

    #: Metric name per exec-stats key (only cache traffic and cascade
    #: routing are exported; LM calls/batches are already metered by
    #: the model's own Usage).
    _METRIC_NAMES = {
        "udf_cache_hits": "repro_udf_cache_hits_total",
        "udf_cache_misses": "repro_udf_cache_misses_total",
        "cascade_cheap_hits": "repro_cascade_cheap_hits_total",
        "cascade_escalations": "repro_cascade_escalations_total",
    }
    _USAGE_FIELDS = (
        "udf_cache_hits",
        "udf_cache_misses",
        "cascade_cheap_hits",
        "cascade_escalations",
    )

    def __init__(
        self,
        cache: UDFMemoCache | None = None,
        usage: object | None = None,
        metrics: object | None = None,
    ) -> None:
        self.cache = cache
        self.usage = usage
        self.metrics = metrics

    def tally(self, stats: dict[str, int], key: str, amount: int) -> None:
        if amount == 0:
            return
        stats[key] = stats.get(key, 0) + amount
        if self.usage is not None and key in self._USAGE_FIELDS:
            setattr(self.usage, key, getattr(self.usage, key) + amount)
        if self.metrics is not None:
            metric = self._METRIC_NAMES.get(key)
            if metric is not None:
                self.metrics.counter(metric).inc(amount)


def _fresh_exec_stats(
    sites: list[UDFCallSite] | None = None,
) -> dict[str, int]:
    """Pre-seeded so EXPLAIN ANALYZE renders a fixed, complete key order.

    Cascade keys appear only when a site actually carries a cheap tier,
    so non-cascade plans render exactly as before.
    """
    stats = {
        "lm_calls": 0,
        "lm_batches": 0,
        "udf_cache_hits": 0,
        "udf_cache_misses": 0,
    }
    if sites is not None and any(
        site.cheap_function is not None for site in sites
    ):
        stats["cascade_cheap_hits"] = 0
        stats["cascade_escalations"] = 0
    return stats


def _cheap_tier_answers(
    site: UDFCallSite, pending: list[MemoKey]
) -> list[object]:
    """Run the cascade's cheap tier over ``pending`` argument tuples.

    Returns one answer per tuple; ``None`` means "escalate to the
    expensive tier".  Any cheap-tier failure — a batch dispatch error,
    a wrong-length batch result, or a per-tuple exception — degrades to
    escalation, so an unsound-by-crashing cheap tier costs money, not
    correctness.
    """
    tuples = [key[1] for key in pending]
    if site.cheap_batch is not None:
        try:
            answers = list(site.cheap_batch(tuples))
        except Exception:
            answers = None
        if answers is not None and len(answers) == len(tuples):
            return answers
    answers = []
    for args in tuples:
        try:
            answers.append(site.cheap_function(*args))
        except Exception:
            answers.append(None)
    return answers


def _resolve_morsel(
    sites: list[UDFCallSite],
    rows: list[Row],
    context: UDFExecContext,
    stats: dict[str, int],
) -> None:
    """Resolve every strict UDF call for a morsel of rows, in waves.

    Sites arrive inner-before-outer, so by the time an outer site's
    argument evaluators run, any nested call they read is already
    memoized.  Per site: evaluate each row's argument tuple (rows whose
    arguments error are skipped — the residual phase re-raises the same
    error at the same row), serve duplicates and cache hits for free,
    then dispatch the remaining distinct tuples as one batch call (or
    per-tuple scalar calls when no batch form is registered or the
    batch dispatch fails).

    Counter contract: ``udf_cache_hits`` counts row-occurrences served
    without a new invocation (statement memo, cross-statement LRU, or
    intra-morsel dedup); ``udf_cache_misses`` and ``lm_calls`` count
    dispatched invocations; ``lm_batches`` counts batch dispatches.
    """
    for site in sites:
        pending: list[MemoKey] = []
        pending_keys: set[MemoKey] = set()
        hits = 0
        for row in rows:
            try:
                key = site.key(row)
            except Exception:
                continue  # argument error; re-raised per row later
            if key in site.memo or key in pending_keys:
                hits += 1
                continue
            if context.cache is not None:
                found, value = context.cache.lookup(key)
                if found:
                    site.memo[key] = value
                    hits += 1
                    continue
            pending_keys.add(key)
            pending.append(key)
        context.tally(stats, "udf_cache_hits", hits)
        if pending and site.cheap_function is not None:
            # Cascade route: the cheap classifier tier answers what it
            # can; only declined tuples reach the expensive dispatch.
            # Cheap answers are real results (contract: the cheap tier
            # agrees with the expensive form), so they are memoized and
            # cached exactly like expensive ones.
            answers = _cheap_tier_answers(site, pending)
            escalated: list[MemoKey] = []
            cheap_hits = 0
            for key, answer in zip(pending, answers):
                if answer is None:
                    escalated.append(key)
                    continue
                site.memo[key] = answer
                if context.cache is not None:
                    context.cache.put(key, answer)
                cheap_hits += 1
            context.tally(stats, "cascade_cheap_hits", cheap_hits)
            context.tally(stats, "cascade_escalations", len(escalated))
            pending = escalated
        if not pending:
            continue
        context.tally(stats, "udf_cache_misses", len(pending))
        context.tally(stats, "lm_calls", len(pending))
        resolved: list[SQLValue] | None = None
        if site.batch_function is not None:
            context.tally(stats, "lm_batches", 1)
            try:
                resolved = list(
                    site.batch_function([key[1] for key in pending])
                )
            except Exception:
                # Fall back to per-tuple scalar calls so each failing
                # tuple is attributed (and wrapped) exactly as the
                # per-row oracle path would attribute it.
                resolved = None
            else:
                if len(resolved) != len(pending):
                    raise ExecutionError(
                        f"batch form of {site.name} returned "
                        f"{len(resolved)} results for {len(pending)} "
                        "argument tuples"
                    )
        if resolved is not None:
            for key, value in zip(pending, resolved):
                site.memo[key] = value
                if context.cache is not None:
                    context.cache.put(key, value)
        else:
            for key in pending:
                value = site.call_scalar(key[1])
                site.memo[key] = value
                if context.cache is not None and not isinstance(
                    value, UDFCallError
                ):
                    context.cache.put(key, value)


class BatchedFilter(PlanNode):
    """Filter with vectorized expensive-UDF resolution.

    Pulls morsels of ``batch_size`` rows, resolves every strict
    expensive call through :func:`_resolve_morsel`, then applies the
    residual predicate per row — identical rows, order, and error
    behaviour to :class:`Filter` over the same predicate.
    """

    def __init__(
        self,
        child: PlanNode,
        predicate: Evaluator,
        sites: list[UDFCallSite],
        context: UDFExecContext,
        batch_size: int,
        label: str = "",
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"udf_batch_size must be >= 1, got {batch_size}"
            )
        self.child = child
        self.predicate = predicate
        self.sites = sites
        self.context = context
        self.batch_size = batch_size
        self.label = label
        self.layout = child.layout
        self.exec_stats = _fresh_exec_stats(sites)

    def execute(self) -> Iterator[Row]:
        predicate = self.predicate
        source = self.child.execute()
        while True:
            morsel = list(islice(source, self.batch_size))
            if not morsel:
                return
            _resolve_morsel(
                self.sites, morsel, self.context, self.exec_stats
            )
            for row in morsel:
                if is_true(predicate(row)):
                    yield row

    def _describe(self) -> str:
        label = f"{self.label}, " if self.label else ""
        return (
            f"BatchedFilter({label}batch={self.batch_size}, "
            f"sites={len(self.sites)})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


class BatchedProject(PlanNode):
    """Project with vectorized expensive-UDF resolution (see
    :class:`BatchedFilter`)."""

    def __init__(
        self,
        child: PlanNode,
        evaluators: list[Evaluator],
        layout: RowLayout,
        sites: list[UDFCallSite],
        context: UDFExecContext,
        batch_size: int,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"udf_batch_size must be >= 1, got {batch_size}"
            )
        self.child = child
        self.evaluators = evaluators
        self.layout = layout
        self.sites = sites
        self.context = context
        self.batch_size = batch_size
        self.exec_stats = _fresh_exec_stats(sites)

    def execute(self) -> Iterator[Row]:
        evaluators = self.evaluators
        source = self.child.execute()
        while True:
            morsel = list(islice(source, self.batch_size))
            if not morsel:
                return
            _resolve_morsel(
                self.sites, morsel, self.context, self.exec_stats
            )
            for row in morsel:
                yield tuple(evaluate(row) for evaluate in evaluators)

    def _describe(self) -> str:
        return (
            f"BatchedProject({', '.join(self.layout.names)}, "
            f"batch={self.batch_size}, sites={len(self.sites)})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Slice(PlanNode):
    """Keeps a subset of positions from the child row (column pruning)."""

    def __init__(self, child: PlanNode, positions: list[int]) -> None:
        self.child = child
        self.positions = positions
        self.layout = RowLayout(
            [child.layout.entries[position] for position in positions]
        )

    def execute(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.execute():
            yield tuple(row[position] for position in positions)

    def _describe(self) -> str:
        return f"Slice({self.positions})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class NestedLoopJoin(PlanNode):
    """General join; materialises the right side once."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: Evaluator | None,
        kind: str,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.layout = RowLayout.concat(left.layout, right.layout)

    def execute(self) -> Iterator[Row]:
        right_rows = list(self.right.execute())
        null_right = (None,) * len(self.right.layout)
        condition = self.condition
        for left_row in self.left.execute():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is None or is_true(condition(combined)):
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class HashJoin(PlanNode):
    """Equi-join: builds a hash table on the right side.

    ``residual`` (if any) is evaluated over the combined row for extra
    non-equi conjuncts of the ON clause.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[Evaluator],
        right_keys: list[Evaluator],
        kind: str,
        residual: Evaluator | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.kind = kind
        self.residual = residual
        self.layout = RowLayout.concat(left.layout, right.layout)

    def execute(self) -> Iterator[Row]:
        buckets: dict[tuple[SQLValue, ...], list[Row]] = defaultdict(list)
        for right_row in self.right.execute():
            key = tuple(evaluate(right_row) for evaluate in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL keys never match in an equi-join
            buckets[key].append(right_row)
        null_right = (None,) * len(self.right.layout)
        residual = self.residual
        for left_row in self.left.execute():
            key = tuple(evaluate(left_row) for evaluate in self.left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or is_true(residual(combined)):
                        matched = True
                        yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def _describe(self) -> str:
        return f"HashJoin({self.kind}, {len(self.left_keys)} key(s))"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class AggregateCall:
    """One compiled aggregate invocation within an Aggregate node."""

    def __init__(
        self,
        spec: AggregateSpec,
        argument: Evaluator | None,  # None means COUNT(*)
        distinct: bool,
        name: str,
    ) -> None:
        self.spec = spec
        self.argument = argument
        self.distinct = distinct
        self.name = name


class Aggregate(PlanNode):
    """Hash aggregation over optional group keys.

    Output layout: one column per group key (named by the planner)
    followed by one column per aggregate call.  With no group keys the
    node always emits exactly one row, even over empty input (SQL
    semantics: ``SELECT COUNT(*) FROM empty`` is 0).
    """

    def __init__(
        self,
        child: PlanNode,
        group_evaluators: list[Evaluator],
        calls: list[AggregateCall],
        layout: RowLayout,
    ) -> None:
        self.child = child
        self.group_evaluators = group_evaluators
        self.calls = calls
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        groups: dict[tuple[SQLValue, ...], list] = {}
        distinct_seen: dict[tuple[SQLValue, ...], list[set]] = {}
        order: list[tuple[SQLValue, ...]] = []
        for row in self.child.execute():
            key = tuple(
                evaluate(row) for evaluate in self.group_evaluators
            )
            if key not in groups:
                groups[key] = [call.spec.make_state() for call in self.calls]
                distinct_seen[key] = [set() for _ in self.calls]
                order.append(key)
            states = groups[key]
            seen_sets = distinct_seen[key]
            for position, call in enumerate(self.calls):
                if call.argument is None:
                    value: SQLValue = 1  # COUNT(*) counts every row
                else:
                    value = call.argument(row)
                if call.distinct:
                    if value is None or value in seen_sets[position]:
                        continue
                    seen_sets[position].add(value)
                states[position] = call.spec.step(states[position], value)
        if not self.group_evaluators and not order:
            key = ()
            groups[key] = [call.spec.make_state() for call in self.calls]
            order.append(key)
        for key in order:
            states = groups[key]
            finals = tuple(
                call.spec.finish(state)
                for call, state in zip(self.calls, states)
            )
            yield key + finals

    def _describe(self) -> str:
        names = ", ".join(call.name for call in self.calls)
        return (
            f"Aggregate(groups={len(self.group_evaluators)}, "
            f"calls=[{names}])"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


class _Descending:
    """Inverts the ordering of one :func:`sort_key` part (DESC keys)."""

    __slots__ = ("part",)

    def __init__(self, part: tuple) -> None:
        self.part = part

    def __lt__(self, other: "_Descending") -> bool:
        return other.part < self.part

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Descending) and self.part == other.part
        )


class Sort(PlanNode):
    """ORDER BY as an explicit *total* order.

    The composite key is ``(key parts..., input position)``: every key
    part goes through :func:`~repro.db.types.sort_key` (NULLs rank
    lowest, so they sort first under ASC and last under DESC), DESC
    parts are wrapped in a comparison-inverting shim rather than
    handled by a separate reversed pass, and the original input
    position breaks all remaining ties.  No two rows ever compare
    equal, so the output order — and anything built on it, notably
    ``LIMIT`` under duplicate key values — is reproducible by
    construction rather than by accident of sort stability.

    Equivalent to the previous stable right-to-left multi-pass sort
    (stability there *was* the input-position tie-break, implicitly),
    but the contract is now explicit and single-pass.
    """

    def __init__(
        self,
        child: PlanNode,
        keys: list[Evaluator],
        ascending: list[bool],
    ) -> None:
        self.child = child
        self.keys = keys
        self.ascending = ascending
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        directed = list(zip(self.keys, self.ascending))
        decorated = []
        for position, row in enumerate(self.child.execute()):
            parts: list[object] = []
            for evaluate, ascending in directed:
                part = sort_key(evaluate(row))
                parts.append(part if ascending else _Descending(part))
            parts.append(position)
            decorated.append((tuple(parts), row))
        decorated.sort(key=lambda pair: pair[0])
        for _, row in decorated:
            yield row

    def _describe(self) -> str:
        return f"Sort({len(self.keys)} key(s))"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Limit(PlanNode):
    def __init__(
        self, child: PlanNode, limit: int | None, offset: int
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child.execute():
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def _describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Distinct(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.execute():
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Values(PlanNode):
    """Constant rows (used for FROM-less SELECT)."""

    def __init__(self, rows: list[Row], layout: RowLayout) -> None:
        self.rows = rows
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        yield from self.rows

    def _describe(self) -> str:
        return f"Values({len(self.rows)} row(s))"


# ---------------------------------------------------------------------------
# Sharded execution (exchange-style parallelism over partitioned tables)
#
# A shardable WHERE region is planned as N per-shard pipelines under one
# Exchange:
#
#     Merge                      <- strips the tag, restores scan layout
#       Exchange(shards=N)       <- runs pipelines on threads, k-way merge
#         ShardScan -> [ShardFilter] -> [ShardBatchedFilter...] (x N)
#
# Every shard row carries one trailing *tag*: the row's global id in the
# table's insertion order.  Tags make the merged output order — and
# therefore Sort's input-position tie-break, LIMIT under duplicates, and
# which row an error surfaces at — a pure function of the data,
# independent of shard count, worker count, and thread timing.
# ---------------------------------------------------------------------------


class ShardScan(PlanNode):
    """Scan of one partition, yielding rows tagged with global row ids.

    The advertised ``layout`` is the *untagged* scan layout: evaluators
    compiled against it index positions strictly below the tag, so they
    run unchanged on tagged tuples.  :class:`Merge` strips the tag
    before anything above the exchange sees a row.
    """

    def __init__(
        self,
        table: Table,
        binding: str,
        spec: PartitionSpec,
        shard_id: int,
    ) -> None:
        self.table = table
        self.binding = binding
        self.spec = spec
        self.shard_id = shard_id
        self.layout = RowLayout(
            [(binding, name) for name in table.schema.column_names]
        )

    def execute(self) -> Iterator[Row]:
        rows = self.table.rows
        for row_id in self.table.partition_row_ids()[self.shard_id]:
            yield rows[row_id] + (row_id,)

    def _describe(self) -> str:
        return (
            f"ShardScan({self.table.schema.name} AS {self.binding}, "
            f"{self.spec.describe()}, shard={self.shard_id})"
        )


class ShardFilter(PlanNode):
    """Cheap filter inside a shard pipeline; tags per-row failures."""

    def __init__(
        self, child: PlanNode, predicate: Evaluator, label: str = ""
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.execute():
            try:
                keep = is_true(predicate(row))
            except Exception as exc:
                raise ShardRowError(row[-1], exc) from exc
            if keep:
                yield row

    def _describe(self) -> str:
        return (
            f"ShardFilter({self.label})" if self.label else "ShardFilter"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


def _dispatch_owned(
    site: UDFCallSite,
    owned: list[tuple[MemoKey, object]],
    context: ShardContext,
    stats: dict[str, int],
    ordinal: int,
    site_idx: int,
    first_tag: dict[MemoKey, int],
) -> None:
    """The unsharded dispatch tail over the keys this shard owns.

    Mirrors :func:`_resolve_morsel` exactly — cascade cheap tier, then
    one batch dispatch (or per-tuple scalar fallback) — but resolves
    each key's rendezvous slot as its value lands, and records cache
    events instead of touching the live cache.
    """
    pending = [key for key, _ in owned]
    slots = {key: slot for key, slot in owned}
    dedup = context.dedup
    if pending and site.cheap_function is not None:
        answers = _cheap_tier_answers(site, pending)
        escalated: list[MemoKey] = []
        cheap_hits = 0
        for key, answer in zip(pending, answers):
            if answer is None:
                escalated.append(key)
                continue
            site.memo[key] = answer
            context.record_new(
                ordinal, site_idx, key, first_tag[key], answer
            )
            dedup.resolve(slots[key], answer)
            cheap_hits += 1
        context.tally(stats, "cascade_cheap_hits", cheap_hits)
        context.tally(stats, "cascade_escalations", len(escalated))
        pending = escalated
    if not pending:
        return
    context.tally(stats, "udf_cache_misses", len(pending))
    context.tally(stats, "lm_calls", len(pending))
    resolved: list[SQLValue] | None = None
    if site.batch_function is not None:
        context.tally(stats, "lm_batches", 1)
        try:
            resolved = list(
                site.batch_function([key[1] for key in pending])
            )
        except Exception:
            resolved = None
        else:
            if len(resolved) != len(pending):
                raise ExecutionError(
                    f"batch form of {site.name} returned "
                    f"{len(resolved)} results for {len(pending)} "
                    "argument tuples"
                )
    if resolved is not None:
        for key, value in zip(pending, resolved):
            site.memo[key] = value
            context.record_new(
                ordinal, site_idx, key, first_tag[key], value
            )
            dedup.resolve(slots[key], value)
    else:
        for key in pending:
            value = site.call_scalar(key[1])
            site.memo[key] = value
            if not isinstance(value, UDFCallError):
                context.record_new(
                    ordinal, site_idx, key, first_tag[key], value
                )
            dedup.resolve(slots[key], value)


def _resolve_morsel_sharded(
    sites: list[UDFCallSite],
    rows: list[Row],
    context: ShardContext,
    stats: dict[str, int],
    ordinal: int,
) -> None:
    """Shard-parallel twin of :func:`_resolve_morsel` over tagged rows.

    Differences from the unsharded resolver, and nothing else:

    * cache reads come from the statement-start snapshot (via
      ``context``), and cache effects are *recorded* for the post-join
      replay instead of applied;
    * keys not served by memo or snapshot go through the cross-shard
      :class:`~repro.db.shard.ShardDedup` — the first shard to claim a
      key dispatches it, the rest wait (session parked) and memoize the
      owner's result as a cache hit, so the dispatched set is identical
      at every shard count;
    * owners resolve their own keys *before* waiting on anyone else's
      (wait-free progress), and abort-resolve them with a parked
      :class:`~repro.db.expr.UDFCallError` on a dispatch-level failure
      so cross-shard waiters can never hang.
    """
    for site_idx, site in enumerate(sites):
        pending: list[MemoKey] = []
        pending_keys: set[MemoKey] = set()
        first_tag: dict[MemoKey, int] = {}
        hits = 0
        for row in rows:
            try:
                key = site.key(row)
            except Exception:
                continue  # argument error; re-raised per row later
            if key not in first_tag:
                first_tag[key] = row[-1]
            if key in site.memo or key in pending_keys:
                hits += 1
                continue
            found, value = context.snapshot_lookup(key)
            if found:
                site.memo[key] = value
                context.record_hit(
                    ordinal, site_idx, key, first_tag[key]
                )
                hits += 1
                continue
            pending_keys.add(key)
            pending.append(key)
        owned: list[tuple[MemoKey, object]] = []
        foreign: list[tuple[MemoKey, object]] = []
        dedup = context.dedup
        for key in pending:
            is_owner, slot = dedup.claim((ordinal, site_idx, key))
            if is_owner:
                owned.append((key, slot))
            else:
                foreign.append((key, slot))
        try:
            _dispatch_owned(
                site, owned, context, stats, ordinal, site_idx, first_tag
            )
        finally:
            # A dispatch-level error (e.g. a wrong-length batch result)
            # aborts this morsel; park the failure into any slot we
            # claimed but never filled so other shards' waiters wake.
            for key, slot in owned:
                if not slot.done:
                    dedup.resolve(
                        slot,
                        UDFCallError(
                            ExecutionError(
                                f"shard dispatch of {site.name} aborted"
                            )
                        ),
                    )
        for key, slot in foreign:
            value = dedup.wait(slot)
            site.memo[key] = value
            if not isinstance(value, UDFCallError):
                context.record_new(
                    ordinal, site_idx, key, first_tag[key], value
                )
            hits += 1
        context.tally(stats, "udf_cache_hits", hits)


class ShardBatchedFilter(PlanNode):
    """Batched-UDF filter inside a shard pipeline (tagged rows)."""

    def __init__(
        self,
        child: PlanNode,
        predicate: Evaluator,
        sites: list[UDFCallSite],
        context: ShardContext,
        batch_size: int,
        ordinal: int,
        label: str = "",
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"udf_batch_size must be >= 1, got {batch_size}"
            )
        self.child = child
        self.predicate = predicate
        self.sites = sites
        self.context = context
        self.batch_size = batch_size
        self.ordinal = ordinal
        self.label = label
        self.layout = child.layout
        self.exec_stats = _fresh_exec_stats(sites)

    def execute(self) -> Iterator[Row]:
        predicate = self.predicate
        source = self.child.execute()
        while True:
            morsel = list(islice(source, self.batch_size))
            if not morsel:
                return
            try:
                _resolve_morsel_sharded(
                    self.sites,
                    morsel,
                    self.context,
                    self.exec_stats,
                    self.ordinal,
                )
            except ShardRowError:
                raise
            except Exception as exc:
                raise ShardRowError(morsel[0][-1], exc) from exc
            for row in morsel:
                try:
                    keep = is_true(predicate(row))
                except Exception as exc:
                    raise ShardRowError(row[-1], exc) from exc
                if keep:
                    yield row

    def _describe(self) -> str:
        label = f"{self.label}, " if self.label else ""
        return (
            f"ShardBatchedFilter({label}batch={self.batch_size}, "
            f"sites={len(self.sites)})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


class ShardBatchedProject(PlanNode):
    """Batched-UDF projection inside a shard pipeline.

    Projects each resolved row and re-appends its tag, so the merge
    above still sees globally ordered tuples.
    """

    def __init__(
        self,
        child: PlanNode,
        evaluators: list[Evaluator],
        layout: RowLayout,
        sites: list[UDFCallSite],
        context: ShardContext,
        batch_size: int,
        ordinal: int,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"udf_batch_size must be >= 1, got {batch_size}"
            )
        self.child = child
        self.evaluators = evaluators
        self.layout = layout
        self.sites = sites
        self.context = context
        self.batch_size = batch_size
        self.ordinal = ordinal
        self.exec_stats = _fresh_exec_stats(sites)

    def execute(self) -> Iterator[Row]:
        evaluators = self.evaluators
        source = self.child.execute()
        while True:
            morsel = list(islice(source, self.batch_size))
            if not morsel:
                return
            try:
                _resolve_morsel_sharded(
                    self.sites,
                    morsel,
                    self.context,
                    self.exec_stats,
                    self.ordinal,
                )
            except ShardRowError:
                raise
            except Exception as exc:
                raise ShardRowError(morsel[0][-1], exc) from exc
            for row in morsel:
                try:
                    projected = tuple(
                        evaluate(row) for evaluate in evaluators
                    )
                except Exception as exc:
                    raise ShardRowError(row[-1], exc) from exc
                yield projected + (row[-1],)

    def _describe(self) -> str:
        return (
            f"ShardBatchedProject({', '.join(self.layout.names)}, "
            f"batch={self.batch_size}, sites={len(self.sites)})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


def _shard_stat_nodes(pipeline: PlanNode) -> list[PlanNode]:
    """Stat-carrying nodes of one shard pipeline, in top-down order."""
    nodes: list[PlanNode] = []
    stack = [pipeline]
    while stack:
        node = stack.pop()
        if hasattr(node, "exec_stats"):
            nodes.append(node)
        stack.extend(reversed(node._children()))
    return nodes


class Exchange(PlanNode):
    """Runs per-shard pipelines on threads; merges tagged rows.

    Execution contract (the determinism spine of the whole feature):

    * shards run in waves of at most ``runtime.workers`` threads; a
      wave's LM sessions are opened on the caller's thread in shard
      order with orders derived from the caller's own session, so
      micro-batch composition is a pure function of the workload;
    * the caller's session is *parked* for the duration — it is
      waiting on the shards, not on its own LM call — otherwise the
      flush barrier the shards need could never complete;
    * shard threads buffer all Usage/metrics/cache effects; after the
      join the caller replays them in canonical order (shard order for
      tallies, plan-order-then-first-occurrence for cache events), so
      every shared counter is byte-identical at any shard/worker count;
    * rows are k-way merged by tag; on shard errors the rows strictly
      before the smallest error tag are yielded, then that error is
      re-raised — the same first-failing-row the unsharded order hits.

    Shards with UDF sites but no configured LM host run sequentially
    (still on spawned threads, so traces cannot tell the difference):
    concurrent bare calls into a SimulatedLM would accumulate its float
    meters in scheduling order.
    """

    def __init__(
        self,
        shards: list[PlanNode],
        contexts: list[ShardContext],
        context: UDFExecContext,
        runtime: ShardRuntime,
    ) -> None:
        if not shards:
            raise ExecutionError("Exchange requires at least one shard")
        self.shards = shards
        self.contexts = contexts
        self.context = context
        self.runtime = runtime
        self.layout = shards[0].layout
        self.exec_stats: dict[str, int] = {}
        #: Stable operator label for trace spans: span names must not
        #: leak the shard count (see repro.obs.explain).
        self.trace_describe = "Exchange"

    def execute(self) -> Iterator[Row]:
        sites = [
            site
            for node in _shard_stat_nodes(self.shards[0])
            for site in getattr(node, "sites", [])
        ]
        has_sites = bool(sites)
        if has_sites:
            for key, value in _fresh_exec_stats(sites).items():
                self.exec_stats.setdefault(key, value)
        lm = self.runtime.lm if has_sites else None
        snapshot: dict = {}
        if has_sites and self.context.cache is not None:
            snapshot = self.context.cache.snapshot()
        dedup = ShardDedup(lm)
        for shard_context in self.contexts:
            shard_context.begin(snapshot, dedup)
        count = len(self.shards)
        results: list[list[Row]] = [[] for _ in range(count)]
        errors: list[ShardRowError | None] = [None] * count
        if has_sites and lm is None:
            concurrency = 1
        else:
            concurrency = self.runtime.workers
        parent = lm.current_session() if lm is not None else None
        parked = lm.parked() if lm is not None else nullcontext()
        with parked:
            for start in range(0, count, concurrency):
                wave = list(range(start, min(start + concurrency, count)))
                sessions: dict[int, object] = {}
                if lm is not None:
                    for shard_id in wave:
                        order = None
                        if parent is not None:
                            order = (
                                (parent.order + 1) * 1_000_000 + shard_id
                            )
                        sessions[shard_id] = lm.open_session(order)
                threads: list[threading.Thread] = []
                for shard_id in wave:
                    name = next_shard_thread_name(shard_id)
                    thread = threading.Thread(
                        target=self._run_shard,
                        args=(
                            shard_id,
                            sessions.get(shard_id),
                            lm,
                            results,
                            errors,
                        ),
                        name=name,
                    )
                    racecheck.fork(name)
                    thread.start()
                    threads.append(thread)
                for thread in threads:
                    thread.join()
                    racecheck.join(thread.name)
        # Replay buffered effects on the caller's thread, in canonical
        # order: operator tallies shard by shard (mirroring Usage and
        # metrics through the real context), then cache events by call
        # site and global first occurrence.
        for shard_id, pipeline in enumerate(self.shards):
            racecheck.read(f"Exchange.shard.{shard_id}")
            for node in _shard_stat_nodes(pipeline):
                for key, amount in node.exec_stats.items():
                    self.context.tally(self.exec_stats, key, amount)
        if has_sites and self.context.cache is not None:
            for _site, kind, key, value in merge_cache_events(
                self.contexts
            ):
                if kind == "hit":
                    self.context.cache.lookup(key)
                else:
                    self.context.cache.put(key, value)
        first_error: ShardRowError | None = None
        for error in errors:
            if error is not None and (
                first_error is None or error.tag < first_error.tag
            ):
                first_error = error
        for row in heapq.merge(*results, key=lambda row: row[-1]):
            if first_error is not None and row[-1] >= first_error.tag:
                break
            yield row
        if first_error is not None:
            raise first_error.error

    def _run_shard(
        self,
        shard_id: int,
        session: object,
        lm: object,
        results: list[list[Row]],
        errors: list[ShardRowError | None],
    ) -> None:
        rows: list[Row] = []
        error: ShardRowError | None = None
        try:
            if session is not None:
                lm.bind(session)
            try:
                for row in self.shards[shard_id].execute():
                    rows.append(row)
            except ShardRowError as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 - tagged and re-raised
                error = ShardRowError(-1, exc)
        finally:
            if session is not None:
                lm.close_session(session)
            racecheck.write(f"Exchange.shard.{shard_id}")
            results[shard_id] = rows
            errors[shard_id] = error

    def _describe(self) -> str:
        return f"Exchange(shards={len(self.shards)})"

    def _children(self) -> list[PlanNode]:
        return list(self.shards)


class Merge(PlanNode):
    """Strips shard tags; output order is the global scan order."""

    def __init__(self, child: Exchange) -> None:
        self.child = child
        self.layout = child.layout
        self.trace_describe = "Merge"

    def execute(self) -> Iterator[Row]:
        for row in self.child.execute():
            yield row[:-1]

    def _describe(self) -> str:
        return "Merge"

    def _children(self) -> list[PlanNode]:
        return [self.child]
