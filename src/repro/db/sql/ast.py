"""AST node definitions for the SQL dialect.

Expression nodes and statement nodes are plain frozen dataclasses; the
planner walks them, so they carry no behaviour beyond ``__repr__``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: int | float | str | bool | None


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference (``t.col`` or ``col``).

    ``position`` is the character offset of the reference in the source
    SQL, carried for analyzer diagnostics; it is excluded from equality
    and hashing so two references to the same column compare equal no
    matter where they appear (the planner relies on that).
    """

    name: str
    table: str | None = None
    position: int | None = field(default=None, compare=False)

    def display(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star:
    """``*`` or ``t.*`` in a projection or inside COUNT(*)."""

    table: str | None = None
    position: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "-", "+", "NOT"
    operand: "Expression"


@dataclass(frozen=True)
class BinaryOp:
    op: str  # arithmetic, comparison, AND/OR, "||"
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    name: str  # upper-cased
    args: tuple["Expression", ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)
    position: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class CaseExpression:
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: "Expression | None"
    branches: tuple[tuple["Expression", "Expression"], ...]
    default: "Expression | None"


@dataclass(frozen=True)
class CastExpression:
    operand: "Expression"
    type_name: str


@dataclass(frozen=True)
class InList:
    operand: "Expression"
    items: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery:
    operand: "Expression"
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ExistsSubquery:
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery:
    subquery: "Select"


@dataclass(frozen=True)
class BetweenExpression:
    operand: "Expression"
    lower: "Expression"
    upper: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class LikeExpression:
    operand: "Expression"
    pattern: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class IsNullExpression:
    operand: "Expression"
    negated: bool = False


Expression = Union[
    Literal,
    ColumnRef,
    Star,
    UnaryOp,
    BinaryOp,
    FunctionCall,
    CaseExpression,
    CastExpression,
    InList,
    InSubquery,
    ExistsSubquery,
    ScalarSubquery,
    BetweenExpression,
    LikeExpression,
    IsNullExpression,
]


# ---------------------------------------------------------------------------
# FROM clause sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableSource:
    name: str
    alias: str | None = None
    position: int | None = field(default=None, compare=False)

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    query: "Select"
    alias: str


@dataclass(frozen=True)
class Join:
    """A join between the accumulated left source tree and ``right``."""

    kind: str  # "INNER", "LEFT", "CROSS"
    left: "FromSource"
    right: "FromSource"
    condition: Expression | None


FromSource = Union[TableSource, SubquerySource, Join]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    source: FromSource | None = None
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Expression | None = None
    offset: Expression | None = None
    distinct: bool = False


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class ForeignKeyDef:
    column: str
    parent_table: str
    parent_column: str


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    foreign_keys: tuple[ForeignKeyDef, ...] = ()


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty means all, in declaration order
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expression | None = None


Statement = Union[Select, CreateTable, Insert, Update, Delete]


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------

#: Dataclass fields holding a nested SELECT rather than an expression.
SUBQUERY_FIELDS = ("subquery", "query")


def walk(
    expression: "Expression", into_subqueries: bool = False
) -> Iterator["Expression"]:
    """Yield every expression node in ``expression`` (pre-order).

    Descends through tuples (CASE branches, IN lists, function
    arguments) so nothing nested is missed; subquery SELECTs are opaque
    unless ``into_subqueries`` is set.
    """
    yield expression
    if not dataclasses.is_dataclass(expression):
        return
    for f in dataclasses.fields(expression):
        if not into_subqueries and f.name in SUBQUERY_FIELDS:
            continue
        yield from _walk_value(
            getattr(expression, f.name), into_subqueries
        )


def _walk_value(value: object, into_subqueries: bool) -> Iterator:
    if isinstance(value, tuple):
        for element in value:
            yield from _walk_value(element, into_subqueries)
    elif dataclasses.is_dataclass(value) and not isinstance(value, Select):
        yield from walk(value, into_subqueries)  # type: ignore[arg-type]
