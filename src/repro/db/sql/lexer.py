"""SQL tokenizer.

Produces a flat token stream.  Supports:

- bare and quoted identifiers (``"Academic Year"``, `` `col` ``, ``[col]``),
- single-quoted string literals with ``''`` escaping,
- integer and float literals (including scientific notation),
- multi-character operators (``<=``, ``>=``, ``<>``, ``!=``, ``||``),
- line comments (``-- ...``) and block comments (``/* ... */``).

Keywords are recognised case-insensitively; the lexer tags them as
``KEYWORD`` tokens carrying the upper-cased text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    STRING = "STRING"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON JOIN INNER
    LEFT RIGHT OUTER CROSS AND OR NOT IN IS NULL LIKE BETWEEN EXISTS CASE
    WHEN THEN ELSE END CAST DISTINCT ASC DESC UNION ALL ANY INSERT INTO
    VALUES CREATE TABLE PRIMARY KEY FOREIGN REFERENCES TRUE FALSE
    UPDATE SET DELETE
    """.split()
)

_MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||", "==")
_SINGLE_CHAR_OPERATORS = set("+-*/%<>=")
_PUNCTUATION = set("(),.;")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in keywords


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char.isspace():
            position += 1
            continue
        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if sql.startswith("/*", position):
            end = sql.find("*/", position + 2)
            if end == -1:
                raise SQLSyntaxError("unterminated block comment", position)
            position = end + 2
            continue
        if char == "'":
            text, position = _read_string(sql, position)
            tokens.append(Token(TokenType.STRING, text, position))
            continue
        if char in ('"', "`", "["):
            text, position = _read_quoted_identifier(sql, position)
            tokens.append(Token(TokenType.IDENTIFIER, text, position))
            continue
        if char.isdigit() or (
            char == "."
            and position + 1 < length
            and sql[position + 1].isdigit()
        ):
            token, position = _read_number(sql, position)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            token, position = _read_word(sql, position)
            tokens.append(token)
            continue
        multi = sql[position : position + 2]
        if multi in _MULTI_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, multi, position))
            position += 2
            continue
        if char in _SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, position))
            position += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, position))
            position += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r}", position)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    position = start + 1
    pieces: list[str] = []
    while position < len(sql):
        char = sql[position]
        if char == "'":
            if sql.startswith("''", position):
                pieces.append("'")
                position += 2
                continue
            return "".join(pieces), position + 1
        pieces.append(char)
        position += 1
    raise SQLSyntaxError("unterminated string literal", start)


_CLOSER = {'"': '"', "`": "`", "[": "]"}


def _read_quoted_identifier(sql: str, start: int) -> tuple[str, int]:
    opener = sql[start]
    closer = _CLOSER[opener]
    position = start + 1
    pieces: list[str] = []
    while position < len(sql):
        char = sql[position]
        if char == closer:
            doubled = closer + closer
            if opener == closer and sql.startswith(doubled, position):
                pieces.append(closer)
                position += 2
                continue
            return "".join(pieces), position + 1
        pieces.append(char)
        position += 1
    raise SQLSyntaxError("unterminated quoted identifier", start)


def _read_number(sql: str, start: int) -> tuple[Token, int]:
    position = start
    is_float = False
    while position < len(sql) and sql[position].isdigit():
        position += 1
    if position < len(sql) and sql[position] == ".":
        is_float = True
        position += 1
        while position < len(sql) and sql[position].isdigit():
            position += 1
    if position < len(sql) and sql[position] in ("e", "E"):
        scan = position + 1
        if scan < len(sql) and sql[scan] in ("+", "-"):
            scan += 1
        if scan < len(sql) and sql[scan].isdigit():
            is_float = True
            position = scan
            while position < len(sql) and sql[position].isdigit():
                position += 1
    text = sql[start:position]
    token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
    return Token(token_type, text, start), position


def _read_word(sql: str, start: int) -> tuple[Token, int]:
    position = start
    while position < len(sql) and (
        sql[position].isalnum() or sql[position] == "_"
    ):
        position += 1
    text = sql[start:position]
    upper = text.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), position
    return Token(TokenType.IDENTIFIER, text, start), position
