"""SQL front-end: lexer, AST, and recursive-descent parser."""

from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.sql.parser import parse_statement

__all__ = ["Token", "TokenType", "parse_statement", "tokenize"]
