"""Recursive-descent SQL parser.

Grammar coverage (everything the TAG benchmark, the Text2SQL synthesizer,
and the hand-written pipelines emit):

- ``SELECT [DISTINCT] items FROM source [JOIN ... ON ...]* [WHERE]
  [GROUP BY] [HAVING] [ORDER BY] [LIMIT [OFFSET]]``
- subqueries in FROM, ``IN (SELECT ...)``, ``EXISTS``, and scalar position
- ``CASE``, ``CAST``, ``LIKE``, ``IN (list)``, ``BETWEEN``, ``IS [NOT] NULL``
- ``CREATE TABLE`` with PRIMARY KEY / NOT NULL / FOREIGN KEY clauses
- ``INSERT INTO t [(cols)] VALUES (...), (...)``
"""

from __future__ import annotations

from repro.db.sql import ast
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.errors import SQLSyntaxError

_COMPARISON_OPERATORS = {"=", "==", "<>", "!=", "<", "<=", ">", ">="}


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is permitted)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_select(sql: str) -> ast.Select:
    """Parse SQL that must be a SELECT statement."""
    statement = parse_statement(sql)
    if not isinstance(statement, ast.Select):
        raise SQLSyntaxError("expected a SELECT statement")
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        return self._current.matches_keyword(*keywords)

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            self._fail(f"expected {keyword}")

    def _check_punct(self, text: str) -> bool:
        return self._current.type is TokenType.PUNCT and (
            self._current.text == text
        )

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            self._fail(f"expected {text!r}")

    def _check_operator(self, *texts: str) -> bool:
        return self._current.type is TokenType.OPERATOR and (
            self._current.text in texts
        )

    def _fail(self, message: str) -> None:
        token = self._current
        shown = token.text or "<end of input>"
        raise SQLSyntaxError(
            f"{message}, found {shown!r}", position=token.position
        )

    def expect_end(self) -> None:
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            self._fail("unexpected trailing input")

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._check_keyword("SELECT"):
            return self._parse_select()
        if self._check_keyword("CREATE"):
            return self._parse_create_table()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        self._fail("expected SELECT, CREATE, INSERT, UPDATE, or DELETE")
        raise AssertionError  # pragma: no cover

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._parse_identifier("column name")
        if not self._check_operator("="):
            self._fail("expected '=' in assignment")
        self._advance()
        return column, self.parse_expression()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_identifier("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Delete(table, where)

    def _parse_create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._parse_identifier("table name")
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        foreign_keys: list[ast.ForeignKeyDef] = []
        while True:
            if self._check_keyword("FOREIGN"):
                foreign_keys.append(self._parse_foreign_key())
            elif self._check_keyword("PRIMARY"):
                self._parse_table_level_primary_key(columns)
            else:
                columns.append(self._parse_column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name, tuple(columns), tuple(foreign_keys))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._parse_identifier("column name")
        type_name = self._parse_identifier("column type")
        if self._accept_punct("("):
            # Swallow length arguments like VARCHAR(64).
            while not self._accept_punct(")"):
                self._advance()
        primary_key = False
        not_null = False
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("NULL"):
                pass
            else:
                break
        return ast.ColumnDef(name, type_name, primary_key, not_null)

    def _parse_table_level_primary_key(
        self, columns: list[ast.ColumnDef]
    ) -> None:
        self._expect_keyword("PRIMARY")
        self._expect_keyword("KEY")
        self._expect_punct("(")
        names = [self._parse_identifier("column name")]
        while self._accept_punct(","):
            names.append(self._parse_identifier("column name"))
        self._expect_punct(")")
        wanted = {name.lower() for name in names}
        for position, column in enumerate(columns):
            if column.name.lower() in wanted:
                columns[position] = ast.ColumnDef(
                    column.name, column.type_name, True, column.not_null
                )

    def _parse_foreign_key(self) -> ast.ForeignKeyDef:
        self._expect_keyword("FOREIGN")
        self._expect_keyword("KEY")
        self._expect_punct("(")
        column = self._parse_identifier("column name")
        self._expect_punct(")")
        self._expect_keyword("REFERENCES")
        parent = self._parse_identifier("table name")
        self._expect_punct("(")
        parent_column = self._parse_identifier("column name")
        self._expect_punct(")")
        return ast.ForeignKeyDef(column, parent, parent_column)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_identifier("table name")
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._parse_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._parse_identifier("column name"))
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self.parse_expression()]
            while self._accept_punct(","):
                values.append(self.parse_expression())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return ast.Insert(table, tuple(columns), tuple(rows))

    # -- SELECT ----------------------------------------------------------

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        source = None
        if self._accept_keyword("FROM"):
            source = self._parse_from()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept_punct(","):
                group_by.append(self.parse_expression())
        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expression()
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        offset = None
        if self._accept_keyword("LIMIT"):
            limit = self.parse_expression()
            if self._accept_keyword("OFFSET"):
                offset = self.parse_expression()
            elif self._accept_punct(","):
                # LIMIT offset, count (MySQL style, BIRD queries use it)
                offset = limit
                limit = self.parse_expression()
        return ast.Select(
            items=tuple(items),
            source=source,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return ast.SelectItem(expression, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression, ascending)

    def _parse_from(self) -> ast.FromSource:
        source = self._parse_from_item()
        while True:
            if self._accept_punct(","):
                right = self._parse_from_item()
                source = ast.Join("CROSS", source, right, None)
                continue
            kind = self._parse_join_kind()
            if kind is None:
                return source
            right = self._parse_from_item()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expression()
            source = ast.Join(kind, source, right, condition)

    def _parse_join_kind(self) -> str | None:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "LEFT"
        if self._accept_keyword("JOIN"):
            return "INNER"
        return None

    def _parse_from_item(self) -> ast.FromSource:
        if self._accept_punct("("):
            if self._check_keyword("SELECT"):
                query = self._parse_select()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._parse_identifier("subquery alias")
                return ast.SubquerySource(query, alias)
            source = self._parse_from()
            self._expect_punct(")")
            return source
        position = self._current.position
        name = self._parse_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return ast.TableSource(name, alias, position=position)

    def _parse_identifier(self, what: str) -> str:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            return self._advance().text
        # Permit non-reserved keywords used as identifiers in a pinch.
        if token.type is TokenType.KEYWORD and token.text in (
            "KEY",
            "VALUES",
            "ALL",
        ):
            return self._advance().text
        self._fail(f"expected {what}")
        raise AssertionError  # pragma: no cover

    # -- expressions (precedence climbing) --------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            if self._check_operator(*_COMPARISON_OPERATORS):
                op = self._advance().text
                if op == "==":
                    op = "="
                if op == "!=":
                    op = "<>"
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right)
                continue
            negated = False
            if self._check_keyword("NOT"):
                lookahead = self._tokens[self._position + 1]
                if lookahead.matches_keyword("IN", "LIKE", "BETWEEN"):
                    self._advance()
                    negated = True
                else:
                    break
            if self._accept_keyword("IS"):
                is_negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                left = ast.IsNullExpression(left, negated=is_negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_additive()
                left = ast.LikeExpression(left, pattern, negated=negated)
                continue
            if self._accept_keyword("BETWEEN"):
                lower = self._parse_additive()
                self._expect_keyword("AND")
                upper = self._parse_additive()
                left = ast.BetweenExpression(left, lower, upper, negated)
                continue
            if self._accept_keyword("IN"):
                left = self._parse_in_tail(left, negated)
                continue
            if negated:
                self._fail("expected IN, LIKE, or BETWEEN after NOT")
            break
        return left

    def _parse_in_tail(
        self, operand: ast.Expression, negated: bool
    ) -> ast.Expression:
        self._expect_punct("(")
        if self._check_keyword("SELECT"):
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.InSubquery(operand, subquery, negated)
        items = [self.parse_expression()]
        while self._accept_punct(","):
            items.append(self.parse_expression())
        self._expect_punct(")")
        return ast.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._check_operator("+", "-", "||"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._check_operator("*", "/", "%"):
            op = self._advance().text
            right = self._parse_unary()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._check_operator("-", "+"):
            op = self._advance().text
            return ast.UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.text))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if token.matches_keyword("CAST"):
            return self._parse_cast()
        if token.matches_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.ExistsSubquery(subquery)
        if self._check_punct("("):
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expression = self.parse_expression()
            self._expect_punct(")")
            return expression
        if self._check_operator("*"):
            position = self._advance().position
            return ast.Star(position=position)
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        self._fail("expected an expression")
        raise AssertionError  # pragma: no cover

    def _parse_identifier_expression(self) -> ast.Expression:
        token = self._advance()
        name = token.text
        if self._check_punct("("):
            return self._parse_function_call(name, token.position)
        if self._accept_punct("."):
            if self._check_operator("*"):
                self._advance()
                return ast.Star(table=name, position=token.position)
            column = self._parse_identifier("column name")
            return ast.ColumnRef(
                column, table=name, position=token.position
            )
        return ast.ColumnRef(name, position=token.position)

    def _parse_function_call(
        self, name: str, position: int | None = None
    ) -> ast.FunctionCall:
        self._expect_punct("(")
        upper = name.upper()
        if self._check_operator("*"):
            self._advance()
            self._expect_punct(")")
            return ast.FunctionCall(upper, (), star=True, position=position)
        if self._accept_punct(")"):
            return ast.FunctionCall(upper, (), position=position)
        distinct = self._accept_keyword("DISTINCT")
        args = [self.parse_expression()]
        while self._accept_punct(","):
            args.append(self.parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(
            upper, tuple(args), distinct=distinct, position=position
        )

    def _parse_case(self) -> ast.CaseExpression:
        self._expect_keyword("CASE")
        operand = None
        if not self._check_keyword("WHEN"):
            operand = self.parse_expression()
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            branches.append((condition, result))
        if not branches:
            self._fail("CASE requires at least one WHEN branch")
        default = None
        if self._accept_keyword("ELSE"):
            default = self.parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpression(operand, tuple(branches), default)

    def _parse_cast(self) -> ast.CastExpression:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        type_name = self._parse_identifier("type name")
        if self._accept_punct("("):
            while not self._accept_punct(")"):
                self._advance()
        self._expect_punct(")")
        return ast.CastExpression(operand, type_name)
