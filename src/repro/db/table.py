"""In-memory row storage with type enforcement and secondary hash indexes."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.db.schema import TableSchema
from repro.db.shard import PartitionSpec
from repro.db.types import SQLValue, coerce
from repro.errors import SchemaError

Row = tuple[SQLValue, ...]


class Table:
    """Rows of one table, stored as tuples in insertion order.

    Writes go through :meth:`insert`, which coerces each value to the
    declared column type and enforces NOT NULL and primary-key uniqueness.
    Equality lookups on indexed columns are O(1) via hash indexes, which
    the executor uses for index scans on point predicates.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self._indexes: dict[int, dict[SQLValue, list[int]]] = {}
        self._pk_positions = [
            schema.column_index(column.name)
            for column in schema.primary_key_columns
        ]
        self._pk_seen: set[tuple[SQLValue, ...]] = set()
        self._partition: PartitionSpec | None = None
        self._partition_rows: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row given positionally or as a column->value mapping."""
        row = self._prepare_row(values)
        self._check_constraints(row)
        row_id = len(self._rows)
        self._rows.append(row)
        for position, index in self._indexes.items():
            index[row[position]].append(row_id)
        self._partition_rows = None

    def insert_many(
        self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Insert rows in bulk; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def _prepare_row(self, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        columns = self.schema.columns
        if isinstance(values, Mapping):
            unknown = [
                key for key in values if not self.schema.has_column(key)
            ]
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {unknown} for table "
                    f"{self.schema.name!r}"
                )
            ordered = [values.get(column.name) for column in columns]
        else:
            if len(values) != len(columns):
                raise SchemaError(
                    f"table {self.schema.name!r} expects {len(columns)} "
                    f"values, got {len(values)}"
                )
            ordered = list(values)
        return tuple(
            coerce(value, column.dtype)
            for value, column in zip(ordered, columns)
        )

    def _check_constraints(self, row: Row) -> None:
        for position, column in enumerate(self.schema.columns):
            if row[position] is None and not column.nullable:
                raise SchemaError(
                    f"NULL in NOT NULL column {column.name!r} of "
                    f"{self.schema.name!r}"
                )
        if self._pk_positions:
            key = tuple(row[position] for position in self._pk_positions)
            if key in self._pk_seen:
                raise SchemaError(
                    f"duplicate primary key {key!r} in {self.schema.name!r}"
                )
            self._pk_seen.add(key)

    def replace_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Replace the table's contents wholesale (UPDATE/DELETE use
        this after computing the surviving/modified row set); constraint
        checks and indexes are rebuilt from scratch.  Returns the new
        row count."""
        prepared = [self._prepare_row(row) for row in rows]
        self._rows = []
        self._pk_seen = set()
        indexed_positions = list(self._indexes)
        self._indexes = {}
        for row in prepared:
            self._check_constraints(row)
            self._rows.append(row)
        for position in indexed_positions:
            self.create_index(self.schema.columns[position].name)
        self._partition_rows = None
        return len(self._rows)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def set_partitioning(self, spec: PartitionSpec | None) -> None:
        """Declare (or clear) this table's shard partitioning.

        Partitioning is a *logical* annotation: rows stay in one list
        in insertion order and every unsharded code path is untouched.
        The sharded executor reads :meth:`partition_row_ids` to give
        each shard its global row ids — global, so the merged output
        order (and Sort's input-position tie-break above it) is
        independent of the shard count.
        """
        if spec is not None:
            self.schema.column_index(spec.column)  # raises on unknown
        self._partition = spec
        self._partition_rows = None

    @property
    def partition_spec(self) -> PartitionSpec | None:
        return self._partition

    def partition_row_ids(self) -> list[list[int]]:
        """Per-shard global row ids, each list ascending.

        Rebuilt lazily after any write; deterministic because the
        partitioner hashes canonical value encodings, never Python's
        seeded ``hash``.
        """
        spec = self._partition
        if spec is None:
            raise SchemaError(
                f"table {self.schema.name!r} is not partitioned"
            )
        if self._partition_rows is None:
            position = self.schema.column_index(spec.column)
            shards: list[list[int]] = [[] for _ in range(spec.shards)]
            for row_id, row in enumerate(self._rows):
                shards[spec.shard_of(row[position])].append(row_id)
            self._partition_rows = shards
        return self._partition_rows

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def rows(self) -> list[Row]:
        """All rows, in insertion order (a direct view; do not mutate)."""
        return self._rows

    def column_values(self, name: str) -> list[SQLValue]:
        position = self.schema.column_index(name)
        return [row[position] for row in self._rows]

    def distinct_count(self, name: str) -> int:
        """Number of distinct values in a column (catalog statistic).

        The static analyzer uses this to bound batched LM-UDF cost: a
        deduplicating execution path invokes the UDF at most once per
        distinct argument value, not once per row.
        """
        position = self.schema.column_index(name)
        return len({row[position] for row in self._rows})

    def null_count(self, name: str) -> int:
        """Number of NULLs in a column (catalog statistic).

        The cost model's selectivity estimator uses the null fraction
        for ``IS NULL`` / ``IS NOT NULL`` predicates instead of a
        magic default.
        """
        position = self.schema.column_index(name)
        return sum(1 for row in self._rows if row[position] is None)

    def to_dicts(self) -> list[dict[str, SQLValue]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self._rows]

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def create_index(self, column_name: str) -> None:
        """Build (or rebuild) a hash index on ``column_name``."""
        position = self.schema.column_index(column_name)
        index: dict[SQLValue, list[int]] = defaultdict(list)
        for row_id, row in enumerate(self._rows):
            index[row[position]].append(row_id)
        self._indexes[position] = index

    def has_index(self, column_name: str) -> bool:
        return self.schema.column_index(column_name) in self._indexes

    def lookup(self, column_name: str, value: Any) -> list[Row]:
        """Equality lookup; uses the index when present, else scans."""
        position = self.schema.column_index(column_name)
        coerced = coerce(value, self.schema.columns[position].dtype)
        index = self._indexes.get(position)
        if index is not None:
            return [self._rows[row_id] for row_id in index.get(coerced, [])]
        return [row for row in self._rows if row[position] == coerced]

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self._rows)} rows)"
