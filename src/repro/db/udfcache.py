"""Cross-statement memo cache for expensive (LM) UDF results.

One :class:`UDFMemoCache` lives on each :class:`~repro.db.Database` and
is shared by every statement the database executes: repeated ``exec``
steps over the same table, or repeated rows within one query, resolve
an already-judged ``(function, argument-tuple)`` pair without touching
the model.  Keys are ``(FUNCTION_NAME, args)`` tuples — SQL values are
all hashable — and eviction is least-recently-used over a configurable
capacity, mirroring the serving layer's prompt cache semantics
(:mod:`repro.serve.cache`): only a consuming ``lookup`` promotes an
entry.

Because the one ``Database`` is shared by every ``TagServer`` worker,
the memo is lock-guarded: ``lookup`` is a get *plus* an LRU promotion
and ``put`` is an insert plus eviction, both check-then-act sequences
that interleave incorrectly without mutual exclusion.  (The concurrency
analyzer's dynamic layer, :mod:`repro.obs.racecheck`, found exactly
this in the serve worker sweep before the lock existed.)

Error results are never cached; a failing UDF re-raises on every
evaluation exactly like the per-row oracle path.  Hit/miss *metering*
deliberately lives with the callers (the batched plan operators and
:class:`repro.semantic.SemanticEngine`), which mirror one counter per
probed occurrence into ``Usage``/metrics — the cache itself stays a
dumb LRU so there is exactly one meter per surface.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.obs import racecheck

_MISSING = object()


class UDFMemoCache:
    """LRU memo of UDF results keyed by ``(function, args)``.

    ``capacity == 0`` disables memoization entirely (every lookup
    misses, ``put`` is a no-op), which keeps the batched path's
    intra-morsel dedup measurable on its own in the ablation.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """``(found, value)``; a hit promotes the entry to MRU."""
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.read("UDFMemoCache._entries")
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                return False, None
            racecheck.write("UDFMemoCache._entries")
            self._entries.move_to_end(key)
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.write("UDFMemoCache._entries")
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def snapshot(self) -> dict[Hashable, Any]:
        """A point-in-time copy of the entries, oldest first.

        The sharded executor reads from a statement-start snapshot so
        every shard — and every shard *count* — sees the same cache
        state regardless of what concurrent statements insert mid-scan;
        promotions and inserts are replayed against the live cache
        after the shards join (see :mod:`repro.db.shard`).  A
        ``capacity == 0`` cache snapshots empty.
        """
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.read("UDFMemoCache._entries")
            return dict(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; never promotes."""
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.read("UDFMemoCache._entries")
            return key in self._entries

    def __len__(self) -> int:
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.read("UDFMemoCache._entries")
            return len(self._entries)

    def clear(self) -> None:
        with racecheck.guard("UDFMemoCache._lock", self._lock):
            racecheck.write("UDFMemoCache._entries")
            self._entries.clear()
