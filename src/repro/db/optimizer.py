"""Cost-based LM-aware query optimizer.

TAG queries put LM calls on the hot path, so plan choice — not scan
speed — dominates latency and cost.  This pass sits between planning
and execution and makes four kinds of decisions, each priced by the
static cost model (:mod:`repro.analysis.cost`) and recorded with the
numbers that justified it:

``route``
    How expensive (LM) UDFs execute: ``per-row`` (the oracle path),
    ``batched`` (morsel-driven, deduplicated, memoized), or ``cascade``
    (a cheap classifier tier pre-filters distinct tuples before the
    expensive form runs).  The chosen route is the cheapest by
    estimated LM tokens; ties prefer the more batched route, so the
    choice is never priced above per-row execution (monotonicity,
    property-tested).

``auto-batch-size``
    ``udf_batch_size`` is derived from the analyzer's distinct-value
    bound instead of being caller-supplied: dedup means a morsel larger
    than the distinct argument space buys nothing, and a constant
    un-ordered LIMIT caps how many rows can ever reach the UDF.

``predicate-reorder``
    Cheap deterministic conjuncts run before expensive LM conjuncts,
    priced by catalog selectivities.  Expensive conjuncts keep their
    written order relative to *each other*: reordering two expensive
    conjuncts could surface an error the written order never reaches,
    while hoisting cheap conjuncts can only skip (never introduce) LM
    errors — the asymmetry the equivalence harness pins.

``selection-pushdown``
    Cheap conjuncts are pushed below joins as before; an *expensive*
    conjunct is pushed below a join only when the join's estimated
    output is larger than the below-join input — a selective join
    means fewer LM calls above it.

The report renders as an ``Optimizer:`` footer on EXPLAIN / EXPLAIN
ANALYZE (only for statements that involve expensive UDFs, so plans for
purely relational queries are byte-identical with the optimizer on or
off), and every decision is metered through the one-meter pipeline
(``Usage.optimizer_decisions`` plus per-rule metrics counters).

Imports from :mod:`repro.analysis` stay lazy (function-level): the
analysis package imports ``repro.db`` at module level, and this module
loads as part of ``repro.db``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.db import plan as physical
from repro.db.sql import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.catalog import Database

#: Largest morsel the auto route will pick; beyond this, batching gains
#: nothing while error attribution latency grows.
MAX_AUTO_BATCH = 256

#: Fallback batch size when the static analyzer cannot price the
#: statement (it analyzes a stricter SQL subset than the engine runs).
FALLBACK_BATCH = 16


@dataclass(frozen=True)
class Decision:
    """One optimizer decision, with the numbers that justified it."""

    rule: str
    detail: str

    def render(self) -> str:
        return f"{self.rule}: {self.detail}"


@dataclass
class OptimizerReport:
    """What the optimizer chose for one statement, and why.

    ``est_per_row_tokens`` / ``est_chosen_tokens`` carry the cost
    model's pricing of the unoptimized per-row route and the chosen
    route; the monotonicity property ``chosen <= per_row`` holds by
    construction (the route picker takes a minimum that always includes
    per-row).
    """

    route: str = "per-row"
    udf_batch_size: int | None = None
    est_per_row_calls: int = 0
    est_per_row_tokens: int = 0
    est_chosen_calls: int = 0
    est_chosen_tokens: int = 0
    #: Shards eliminated by partition pruning (equality/IN on the
    #: partition key); mirrored to ``repro_shard_pruned_total``.
    shards_pruned: int = 0
    decisions: list[Decision] = field(default_factory=list)

    def add(self, rule: str, detail: str) -> None:
        self.decisions.append(Decision(rule, detail))

    def render(self) -> str:
        """The EXPLAIN footer: one line per decision."""
        lines = ["Optimizer:"]
        for decision in self.decisions:
            lines.append("  " + decision.render())
        return "\n".join(lines)

    def meter(self, usage: object | None, metrics: object | None) -> None:
        """Mirror decision counts into Usage and the metrics registry.

        Decisions are plan-time events: every planned statement
        (execute, EXPLAIN, EXPLAIN ANALYZE) meters once, deterministic
        for a fixed query and catalog.
        """
        if not self.decisions:
            return
        if usage is not None and hasattr(usage, "optimizer_decisions"):
            usage.optimizer_decisions += len(self.decisions)
        if metrics is not None:
            metrics.counter("repro_optimizer_decisions_total").inc(
                len(self.decisions)
            )
            for decision in self.decisions:
                slug = decision.rule.replace("-", "_")
                metrics.counter(f"repro_optimizer_{slug}_total").inc(1)
            if self.shards_pruned:
                metrics.counter("repro_shard_pruned_total").inc(
                    self.shards_pruned
                )


class QueryOptimizer:
    """Per-statement optimizer: chooses the route, prices the plan, and
    records the planner's LM-relevant rewrites.

    One instance serves one statement (planning is single-shot); the
    :class:`~repro.db.planner.Planner` calls back into
    :meth:`note_reorder` / :meth:`hold_above_join` while building the
    plan, and the finished :class:`OptimizerReport` is attached to the
    EXPLAIN surfaces.
    """

    def __init__(self, db: "Database", cost_model=None) -> None:
        self._db = db
        if cost_model is None:
            from repro.analysis.cost import CostModel

            cost_model = CostModel()
        self._model = cost_model
        self.report = OptimizerReport()
        self.cascade = False
        #: Only statements touching expensive UDFs get decisions; plans
        #: for purely relational queries must stay byte-identical.
        self._lm_relevant = False
        self._bindings: dict[str, object] = {}

    # ------------------------------------------------------------------
    # route choice (pre-planning)
    # ------------------------------------------------------------------

    def choose_route(
        self, select: ast.Select, requested: object
    ) -> int | None:
        """Resolve ``udf_batch_size`` and pick the execution route.

        ``requested`` is the caller's ``udf_batch_size``: the string
        ``"auto"`` delegates the choice here, ``None`` pins the per-row
        oracle path, an int pins that morsel size.  Returns the batch
        size the planner should use.
        """
        names = self._expensive_names(select)
        self._lm_relevant = bool(names)
        self._collect_bindings(select.source)
        if not names:
            return None if requested == "auto" else requested  # type: ignore[return-value]
        cheap_tiered = sorted(
            name
            for name in names
            if self._db.functions.has_cheap(name)
        )
        estimate = self._estimate(select)
        per_row_calls, batched_calls, rows_scanned = estimate
        model = self._model
        self.report.est_per_row_calls = per_row_calls
        self.report.est_per_row_tokens = (
            per_row_calls * model.tokens_per_call
        )
        escalated = math.ceil(
            batched_calls * model.cascade_escalation_rate
        )
        candidates = [
            (
                "per-row",
                per_row_calls,
                per_row_calls * model.tokens_per_call,
            ),
            (
                "batched",
                batched_calls,
                batched_calls * model.tokens_per_call,
            ),
        ]
        if cheap_tiered:
            candidates.append(
                (
                    "cascade",
                    escalated,
                    batched_calls * model.cheap_tokens_per_call
                    + escalated * model.tokens_per_call,
                )
            )
        route, calls, tokens = candidates[0]
        for candidate in candidates[1:]:
            if candidate[2] <= tokens:
                route, calls, tokens = candidate
        batch: int | None
        if requested is None:
            route, calls, tokens = candidates[0]
            batch = None
            self.report.add(
                "route",
                "per-row (caller-pinned udf_batch_size=None): "
                f"est {calls} LM calls / {tokens} tokens",
            )
        elif isinstance(requested, int):
            if route == "per-row":
                route = "batched"
                calls, tokens = candidates[1][1], candidates[1][2]
            batch = requested
            self.report.add(
                "route",
                f"{route} (caller-pinned udf_batch_size={requested}): "
                f"est {calls} LM calls / {tokens} tokens "
                f"(per-row {self.report.est_per_row_calls} calls / "
                f"{self.report.est_per_row_tokens} tokens)",
            )
        elif route == "per-row":
            batch = None
            self.report.add(
                "route",
                f"per-row: est {calls} LM calls / {tokens} tokens",
            )
        else:
            self.report.add(
                "route",
                f"{route}: est {calls} LM calls / {tokens} tokens "
                f"(per-row {self.report.est_per_row_calls} calls / "
                f"{self.report.est_per_row_tokens} tokens)",
            )
            batch = self._auto_batch_size(
                select, batched_calls, rows_scanned
            )
        if route == "cascade":
            self.report.add(
                "cascade",
                f"cheap tier for {', '.join(cheap_tiered)}: "
                f"est escalation rate "
                f"{model.cascade_escalation_rate:.2f}, "
                f"{model.cheap_tokens_per_call} tok/cheap call vs "
                f"{model.tokens_per_call} tok/call",
            )
        self.cascade = route == "cascade" and batch is not None
        self.report.route = route
        self.report.udf_batch_size = batch
        self.report.est_chosen_calls = calls
        self.report.est_chosen_tokens = tokens
        return batch

    def _auto_batch_size(
        self, select: ast.Select, bound: int, rows_scanned: int
    ) -> int:
        batch = max(1, min(bound, MAX_AUTO_BATCH))
        detail = (
            f"udf_batch_size={batch} from distinct-value bound {bound} "
            f"(rows_scanned={rows_scanned})"
        )
        limit = _constant_limit(select)
        if limit is not None and not select.order_by and limit < batch:
            # Without ORDER BY the plan is a streaming prefix: at most
            # LIMIT rows are ever pulled through the UDF, so a larger
            # morsel would prefetch LM calls the query then discards.
            batch = max(1, limit)
            detail = (
                f"udf_batch_size={batch} clamped to LIMIT {limit} "
                f"(streaming prefix; distinct-value bound {bound})"
            )
        self.report.add("auto-batch-size", detail)
        return batch

    def _estimate(self, select: ast.Select) -> tuple[int, int, int]:
        """(per_row_calls, batched_calls, rows_scanned) upper bounds.

        Priced by the static analyzer; when the statement is outside
        the analyzer's subset, falls back to a neutral bound that still
        prefers batching.
        """
        try:
            from repro.analysis import SQLAnalyzer

            report = SQLAnalyzer(
                self._db, cost_model=self._model
            ).analyze(select)
            cost = report.cost
            if cost is not None and cost.lm_calls > 0:
                return (
                    cost.lm_calls,
                    cost.lm_calls_batched,
                    cost.rows_scanned,
                )
            if cost is not None:
                return (0, 0, cost.rows_scanned)
        except Exception:
            pass
        return (FALLBACK_BATCH, FALLBACK_BATCH, FALLBACK_BATCH)

    def _expensive_names(self, select: ast.Select) -> set[str]:
        names: set[str] = set()
        for expression in _statement_expressions(select):
            for node in ast.walk(expression, into_subqueries=True):
                if isinstance(
                    node, ast.FunctionCall
                ) and self._db.functions.is_expensive(node.name):
                    names.add(node.name.upper())
        return names

    # ------------------------------------------------------------------
    # planner hooks
    # ------------------------------------------------------------------

    def note_reorder(
        self,
        cheap: list[ast.Expression],
        expensive: list[ast.Expression],
        node: physical.PlanNode,
    ) -> None:
        """Record a cheap-before-expensive conjunct reorder."""
        if not self._lm_relevant or not cheap or not expensive:
            return
        selectivity = 1.0
        for conjunct in cheap:
            selectivity *= self._selectivity(conjunct)
        rows = _estimate_rows(node)
        surviving = max(0, round(rows * selectivity))
        self.report.add(
            "predicate-reorder",
            f"{len(cheap)} cheap conjunct(s) (est sel "
            f"{selectivity:.3f}, rows {rows} -> {surviving}) before "
            f"{len(expensive)} expensive conjunct(s) @ "
            f"{self._model.tokens_per_call} tok/call; "
            "written order kept among expensive conjuncts",
        )

    def hold_above_join(
        self,
        conjunct: ast.Expression,
        join: physical.PlanNode,
        side: physical.PlanNode,
    ) -> bool:
        """Whether an expensive conjunct should stay above ``join``.

        Pushing below runs the LM over the side's rows; holding above
        runs it over the join's output.  Pick the smaller input.
        """
        if not self._lm_relevant:
            return False
        below = _estimate_rows(side)
        above = _estimate_rows(join)
        label = _conjunct_label(conjunct, self._db.functions)
        kind = getattr(join, "kind", "INNER")
        if above < below:
            self.report.add(
                "selection-pushdown",
                f"held {label} above {kind} join "
                f"(est rows {above} after join vs {below} below)",
            )
            return True
        self.report.add(
            "selection-pushdown",
            f"pushed {label} below {kind} join "
            f"(est rows {below} below vs {above} after join)",
        )
        return False

    def note_shard(
        self,
        table,
        spec,
        pipelines: int,
        prunable: bool,
        pruned: int,
    ) -> None:
        """Record a shard-parallel plan choice (and any pruning).

        Deliberately *not* gated on ``_lm_relevant``: sharding applies
        to purely relational scans too, and the EXPLAIN footer must say
        why a scan fanned out.  The pruning decision is emitted whenever
        a prunable predicate was found — even when it pruned nothing —
        so the decision *count* is invariant across shard counts.
        """
        self.report.add(
            "shard-parallel",
            f"{table.schema.name}: {spec.describe()} -> "
            f"{pipelines} pipeline(s)",
        )
        if prunable:
            self.report.shards_pruned += pruned
            self.report.add(
                "shard-pruning",
                f"partition-key predicate pruned {pruned} of "
                f"{spec.shards} shard(s)",
            )

    def note_shard_declined(self, table, reason: str) -> None:
        """Record why a partitioned table's scan stayed unsharded."""
        self.report.add(
            "shard-declined", f"{table.schema.name}: {reason}"
        )

    def note_cheap_pushdown(
        self, count: int, join: physical.PlanNode
    ) -> None:
        """Record cheap conjuncts pushed into join inputs."""
        if not self._lm_relevant or count == 0:
            return
        kind = getattr(join, "kind", "INNER")
        self.report.add(
            "selection-pushdown",
            f"pushed {count} cheap conjunct(s) below {kind} join",
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _collect_bindings(self, source: ast.FromSource | None) -> None:
        if source is None:
            return
        if isinstance(source, ast.TableSource):
            if self._db.has_table(source.name):
                self._bindings[source.binding.lower()] = self._db.table(
                    source.name
                )
        elif isinstance(source, ast.Join):
            self._collect_bindings(source.left)
            self._collect_bindings(source.right)
        # Subquery sources: computed columns, no catalog stats.

    def _column_stats(self, name: str, table: str | None):
        from repro.analysis.cost import ColumnStats

        if table is not None:
            candidates = [self._bindings.get(table.lower())]
        else:
            candidates = [
                bound
                for bound in self._bindings.values()
                if name.lower()
                in (c.lower() for c in bound.schema.column_names)
            ]
            if len(candidates) != 1:
                return None
        bound = candidates[0]
        if bound is None:
            return None
        try:
            return ColumnStats(
                rows=len(bound),
                distinct=bound.distinct_count(name),
                nulls=bound.null_count(name),
            )
        except Exception:
            return None

    def _selectivity(self, conjunct: ast.Expression) -> float:
        from repro.analysis.cost import predicate_selectivity

        return predicate_selectivity(conjunct, self._column_stats)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _statement_expressions(select: ast.Select):
    for item in select.items:
        yield item.expression
    if select.where is not None:
        yield select.where
    for expression in select.group_by:
        yield expression
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression
    source_stack = [select.source]
    while source_stack:
        source = source_stack.pop()
        if isinstance(source, ast.Join):
            if source.condition is not None:
                yield source.condition
            source_stack.append(source.left)
            source_stack.append(source.right)
        elif isinstance(source, ast.SubquerySource):
            yield from _statement_expressions(source.query)


def _constant_limit(select: ast.Select) -> int | None:
    node = select.limit
    if node is None:
        return None
    if isinstance(node, ast.Literal) and isinstance(
        node.value, int
    ) and not isinstance(node.value, bool):
        return node.value if node.value >= 0 else None
    return None


def _conjunct_label(
    conjunct: ast.Expression, functions
) -> str:
    names = []
    for node in ast.walk(conjunct):
        if isinstance(node, ast.FunctionCall) and functions.is_expensive(
            node.name
        ):
            upper = node.name.upper()
            if upper not in names:
                names.append(upper)
    if names:
        return " + ".join(f"{name}(…)" for name in names)
    return "predicate"


def _estimate_rows(node: physical.PlanNode) -> int:
    """Expected row count of a plan subtree, from catalog statistics.

    Deliberately rough: decisions need relative magnitudes, not truth.
    Filters are counted pass-through (a conservative upper estimate);
    equi-joins assume foreign-key shape (output ~ the larger input).
    """
    if isinstance(node, physical.Scan):
        return len(node.table)
    if isinstance(node, physical.IndexLookup):
        distinct = max(node.table.distinct_count(node.column), 1)
        return max(1, len(node.table) // distinct)
    if isinstance(node, physical.HashJoin):
        return max(
            _estimate_rows(node.left), _estimate_rows(node.right)
        )
    if isinstance(node, physical.NestedLoopJoin):
        product = _estimate_rows(node.left) * _estimate_rows(node.right)
        if node.condition is None:
            return product
        return max(1, product // 3)
    child = getattr(node, "child", None)
    if child is not None:
        return _estimate_rows(child)
    rows = getattr(node, "rows", None)
    if rows is not None:
        return len(rows)
    return 1
