"""Column data types, value coercion, and SQL comparison semantics.

SQL values are represented with plain Python objects: ``int``, ``float``,
``str``, ``bool``, and ``None`` for SQL NULL.  This module centralises the
rules for coercing Python values into a column's declared type and for
comparing heterogeneous values the way the executor needs (NULLs sort
first, cross-type numeric comparison works, anything else falls back to a
stable type ordering).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError

#: Python value type for a single cell.
SQLValue = int | float | str | bool | None


class DataType(enum.Enum):
    """Declared type of a table column."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    #: Accepts any value without coercion (used for computed columns).
    ANY = "ANY"

    @classmethod
    def from_sql(cls, name: str) -> "DataType":
        """Map a SQL type name (e.g. ``VARCHAR``, ``INT``) to a DataType."""
        upper = name.strip().upper()
        if "(" in upper:
            upper = upper[: upper.index("(")]
        mapping = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "TINYINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "DATE": cls.TEXT,
            "DATETIME": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if upper not in mapping:
            raise SchemaError(f"unknown SQL type: {name!r}")
        return mapping[upper]


def coerce(value: Any, dtype: DataType) -> SQLValue:
    """Coerce ``value`` to ``dtype``, raising :class:`SchemaError` on failure.

    ``None`` passes through every type (nullability is enforced by the
    schema, not here).  Numeric strings coerce to numbers; numbers coerce
    to text via ``str``; anything convertible coerces losslessly where
    possible (``2.0`` becomes integer ``2``, but ``2.5`` does not).
    """
    if value is None or dtype is DataType.ANY:
        return value
    if dtype is DataType.INTEGER:
        return _coerce_integer(value)
    if dtype is DataType.REAL:
        return _coerce_real(value)
    if dtype is DataType.TEXT:
        return _coerce_text(value)
    if dtype is DataType.BOOLEAN:
        return _coerce_boolean(value)
    raise SchemaError(f"unhandled data type: {dtype}")  # pragma: no cover


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise SchemaError(f"cannot store non-integral {value!r} as INTEGER")
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError as exc:
            raise SchemaError(f"cannot coerce {value!r} to INTEGER") from exc
    raise SchemaError(f"cannot coerce {type(value).__name__} to INTEGER")


def _coerce_real(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError as exc:
            raise SchemaError(f"cannot coerce {value!r} to REAL") from exc
    raise SchemaError(f"cannot coerce {type(value).__name__} to REAL")


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    raise SchemaError(f"cannot coerce {type(value).__name__} to TEXT")


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise SchemaError(f"cannot coerce {value!r} to BOOLEAN")
    raise SchemaError(f"cannot coerce {type(value).__name__} to BOOLEAN")


def infer_type(value: SQLValue) -> DataType:
    """Infer the narrowest DataType describing a Python value."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, str):
        return DataType.TEXT
    return DataType.ANY


#: Rank used to order values of different Python types deterministically.
_TYPE_RANK = {type(None): 0, bool: 1, int: 1, float: 1, str: 2}


def sort_key(value: SQLValue) -> tuple[int, Any]:
    """Total-order key over heterogeneous SQL values.

    NULLs sort first (rank 0), then numerics (including booleans, which
    compare as 0/1), then text.  The executor uses this for ORDER BY,
    DISTINCT, and MIN/MAX so mixed-type columns never raise ``TypeError``.
    """
    rank = _TYPE_RANK.get(type(value), 3)
    if rank == 0:
        return (0, 0)
    if rank == 1:
        return (1, float(value))  # type: ignore[arg-type]
    if rank == 2:
        return (2, value)
    return (3, str(value))


def compare(left: SQLValue, right: SQLValue) -> int | None:
    """Three-valued SQL comparison: -1, 0, 1, or None if either is NULL."""
    if left is None or right is None:
        return None
    lk, rk = sort_key(left), sort_key(right)
    if lk < rk:
        return -1
    if lk > rk:
        return 1
    return 0


def values_equal(left: SQLValue, right: SQLValue) -> bool | None:
    """SQL equality with NULL propagation (``NULL = x`` is NULL)."""
    result = compare(left, right)
    if result is None:
        return None
    return result == 0
