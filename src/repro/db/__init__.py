"""A from-scratch relational engine with SQL front-end and LM UDF support.

This package is the reproduction's substitute for SQLite3, which the paper
uses as the database API for its SQL-based baselines.  It provides:

- typed columnar-schema tables with optional secondary indexes
  (:mod:`repro.db.table`),
- a SQL lexer/parser producing an AST (:mod:`repro.db.sql`),
- a planner with a small optimizer (:mod:`repro.db.planner`),
- a Volcano-style iterator executor (:mod:`repro.db.executor`),
- scalar and aggregate builtins plus a UDF registry that can host
  language-model UDFs inside SQL (:mod:`repro.db.functions`), the design
  point Figure 1 of the paper illustrates.

The public entry point is :class:`repro.db.Database`::

    db = Database()
    db.create_table(schema)
    result = db.execute("SELECT name FROM movies WHERE revenue > 100")
    rows = result.rows
"""

from repro.db.catalog import Database
from repro.db.result import ResultSet
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.shard import PartitionSpec, ShardRuntime
from repro.db.table import Table
from repro.db.types import DataType
from repro.db.udfcache import UDFMemoCache

__all__ = [
    "Column",
    "DataType",
    "Database",
    "ForeignKey",
    "PartitionSpec",
    "ResultSet",
    "ShardRuntime",
    "Table",
    "TableSchema",
    "UDFMemoCache",
]
