"""Sharded-execution support: partitioning specs and shard-local state.

The exchange-style operators in :mod:`repro.db.plan` split a scan into
N partitions and run each partition's pipeline on its own thread.  This
module holds everything those operators share:

:class:`PartitionSpec`
    How a table's rows map to shards — hash or range partitioning on
    one column.  Hashing goes through ``zlib.crc32`` over a canonical
    value encoding, never Python's seeded ``hash()``, so the mapping is
    stable across processes (the determinism contract of the whole
    engine).

:class:`ShardDedup`
    A per-statement rendezvous that guarantees each distinct UDF
    argument tuple is dispatched exactly *once* per call site no matter
    how many shards its rows land on.  The first shard to claim a key
    owns the dispatch; the others park their LM session (see
    :meth:`repro.serve.BatchingLM.parked`) and wait for the owner's
    result.  Because owners always dispatch their own keys before
    waiting on anyone else's, every wait is on a shard that is making
    progress — the rendezvous cannot deadlock.

:class:`ShardContext`
    The shard-local stand-in for :class:`~repro.db.plan.UDFExecContext`.
    Shards never touch the live memo cache, the shared
    :class:`~repro.lm.usage.Usage`, or the metrics registry directly —
    ``Usage`` mirroring is a read-modify-write ``setattr`` and the LRU
    promotes on lookup, both of which would race (and worse, make
    counter totals depend on thread interleaving).  Instead each shard
    reads from a statement-start cache *snapshot*, buffers its tallies
    in the operator's own stats dict, and records cache events keyed by
    the global row id of the key's first occurrence.  After the shards
    join, the exchange replays tallies and cache events on the caller's
    thread in a canonical order, so the merged counters and the final
    cache contents are byte-identical at any shard or worker count.

:class:`ShardRuntime`
    The execution knobs a :class:`~repro.db.Database` hands the
    planner: worker count and (optionally) the serving-layer
    :class:`~repro.serve.BatchingLM` the expensive UDFs dispatch
    through.  Without an LM host, shards with UDF sites run
    sequentially — concurrent bare calls into a
    :class:`~repro.lm.model.SimulatedLM` would accumulate its float
    meters in scheduling order — while pure relational regions always
    fan out.
"""

from __future__ import annotations

import bisect
import itertools
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.db.types import SQLValue, sort_key
from repro.errors import SchemaError
from repro.obs import racecheck

#: Process-wide spawn counter for unique shard thread names.  The
#: dynamic race checker keys vector clocks by thread *name*, so a name
#: must never be reused within one checker install — a recycled name
#: would inherit a stale clock and manufacture false orderings.  Names
#: are diagnostic only (they never reach exported artifacts), so a
#: monotonic counter is safe here.
_SPAWN = itertools.count()


def next_shard_thread_name(shard_id: int) -> str:
    """A process-unique name for the thread running ``shard_id``."""
    parent = threading.current_thread().name
    return f"{parent}:shard{shard_id}-{next(_SPAWN)}"


@dataclass(frozen=True)
class PartitionSpec:
    """How one table's rows map to shards, on one key column.

    ``kind == "hash"``: ``crc32`` over a canonical encoding of the
    (coerced) key value, modulo ``shards``.  ``kind == "range"``: the
    shard is the number of ``bounds`` strictly below the value (so
    ``bounds = (10, 20)`` makes three shards: ``< 10``, ``[10, 20)``,
    ``>= 20``), compared through :func:`~repro.db.types.sort_key` like
    every other ordering in the engine.  NULL keys always land on
    shard 0 — both schemes, so pruning logic can reason about NULLs
    uniformly.
    """

    column: str
    shards: int
    kind: str = "hash"
    bounds: tuple[SQLValue, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "range"):
            raise SchemaError(
                f"partition kind must be 'hash' or 'range', "
                f"got {self.kind!r}"
            )
        if self.kind == "range":
            keys = [sort_key(bound) for bound in self.bounds]
            if keys != sorted(keys) or len(set(keys)) != len(keys):
                raise SchemaError(
                    "range partition bounds must be strictly increasing"
                )
            expected = len(self.bounds) + 1
            if self.shards != expected:
                raise SchemaError(
                    f"range spec over {len(self.bounds)} bound(s) "
                    f"defines {expected} shards, got shards={self.shards}"
                )
        if self.shards < 1:
            raise SchemaError(
                f"shards must be >= 1, got {self.shards}"
            )

    @classmethod
    def hashed(cls, column: str, shards: int) -> "PartitionSpec":
        return cls(column=column, shards=shards, kind="hash")

    @classmethod
    def ranged(
        cls, column: str, bounds: tuple[SQLValue, ...] | list[SQLValue]
    ) -> "PartitionSpec":
        bounds = tuple(bounds)
        return cls(
            column=column,
            shards=len(bounds) + 1,
            kind="range",
            bounds=bounds,
        )

    def shard_of(self, value: SQLValue) -> int:
        """The shard a (column-coerced) key value belongs to."""
        if value is None:
            return 0
        if self.kind == "hash":
            encoded = repr(sort_key(value)).encode("utf-8")
            return zlib.crc32(encoded) % self.shards
        keys = [sort_key(bound) for bound in self.bounds]
        return bisect.bisect_right(keys, sort_key(value))

    def describe(self) -> str:
        if self.kind == "hash":
            return f"hash({self.column}) % {self.shards}"
        return f"range({self.column}, {len(self.bounds)} bound(s))"


@dataclass
class ShardRuntime:
    """Worker count and optional LM host for the sharded executor."""

    workers: int = 4
    #: The serving-layer batching facade the expensive UDFs dispatch
    #: through, when there is one.  Shard threads open sessions on it
    #: so their morsel batches meet at the flush barrier; without it,
    #: UDF-bearing shards run sequentially (still on spawned threads,
    #: so traces are identical either way).
    lm: Any = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise SchemaError(
                f"shard workers must be >= 1, got {self.workers}"
            )


class _DedupSlot:
    """One claimed key's eventual result; guarded by ShardDedup._cv."""

    __slots__ = ("done", "value")

    def __init__(self) -> None:
        self.done = False
        self.value: Any = None


class ShardDedup:
    """Cross-shard once-per-key dispatch rendezvous for one statement.

    Keys are ``(node ordinal, site index, memo key)`` — dedup is *per
    logical call site*, exactly mirroring the per-site statement memo
    of the unsharded path, so error results propagate to waiters the
    same way a memoized :class:`~repro.db.expr.UDFCallError` replays
    within a site.  Cross-*site* reuse flows through the cache
    snapshot only, which keeps the dispatch set independent of shard
    count.
    """

    def __init__(self, lm: Any = None) -> None:
        self._lm = lm
        self._cv = threading.Condition()
        self._slots: dict[Hashable, _DedupSlot] = {}

    def claim(self, key: Hashable) -> tuple[bool, _DedupSlot]:
        """``(owned, slot)``: the first claimant owns the dispatch."""
        with racecheck.guard("ShardDedup._cv", self._cv):
            racecheck.read("ShardDedup._slots")
            slot = self._slots.get(key)
            if slot is not None:
                return False, slot
            racecheck.write("ShardDedup._slots")
            slot = _DedupSlot()
            self._slots[key] = slot
            return True, slot

    def resolve(self, slot: _DedupSlot, value: Any) -> None:
        """Publish the owner's result and wake every waiter."""
        with racecheck.guard("ShardDedup._cv", self._cv):
            racecheck.write("ShardDedup._slots")
            slot.value = value
            slot.done = True
            self._cv.notify_all()

    def wait(self, slot: _DedupSlot) -> Any:
        """Block until the owner resolves ``slot``; returns its value.

        The waiter's LM session (if any) is parked for the duration:
        a session blocked here will issue no LM calls, so counting it
        toward the flush barrier would deadlock the owner it is
        waiting for.
        """
        parked = (
            self._lm.parked() if self._lm is not None else _NULL_PARK
        )
        with parked:
            with racecheck.guard("ShardDedup._cv", self._cv):
                while not slot.done:
                    racecheck.releasing("ShardDedup._cv")
                    self._cv.wait()
                    racecheck.reacquired("ShardDedup._cv")
                racecheck.read("ShardDedup._slots")
                return slot.value


class _NullPark:
    """No-LM stand-in for ``BatchingLM.parked()``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_PARK = _NullPark()


class ShardRowError(Exception):
    """A per-row failure inside a shard pipeline, tagged for merging.

    ``tag`` is the failing row's global row id (or the first row id of
    the failing morsel for dispatch-level errors; ``-1`` for failures
    before any row is attributable).  The exchange joins every shard,
    yields the merged rows that precede the smallest error tag, then
    re-raises that error — so the statement fails at exactly the row
    where the unsharded evaluation order first fails, at any shard
    count.
    """

    def __init__(self, tag: int, error: Exception) -> None:
        super().__init__(f"shard row {tag}: {error}")
        self.tag = tag
        self.error = error


@dataclass
class ShardContext:
    """Shard-local execution context: snapshot reads, buffered effects.

    The duck-typed twin of :class:`~repro.db.plan.UDFExecContext` for
    shard threads: ``tally`` writes only the operator's stats dict
    (the exchange mirrors merged totals into Usage/metrics after the
    join), cache reads come from the statement-start ``snapshot``, and
    cache effects are recorded as events keyed by each key's
    first-occurrence global row id — a timing-independent quantity —
    so the post-join replay is identical no matter which shard claimed
    a key first.
    """

    snapshot: dict[Hashable, Any] = field(default_factory=dict)
    dedup: ShardDedup | None = None
    #: ``(ordinal, site_idx, key) -> [kind, first_tag, value]`` where
    #: kind is "hit" (present in the snapshot; replayed as a promoting
    #: lookup) or "new" (resolved this statement; replayed as a put).
    events: dict[tuple, list] = field(default_factory=dict)

    def begin(self, snapshot: dict, dedup: ShardDedup) -> None:
        """Arm the context for one execution of its shard pipeline."""
        self.snapshot = snapshot
        self.dedup = dedup
        self.events = {}

    def tally(self, stats: dict[str, int], key: str, amount: int) -> None:
        if amount == 0:
            return
        stats[key] = stats.get(key, 0) + amount

    def snapshot_lookup(self, key: Hashable) -> tuple[bool, Any]:
        if key in self.snapshot:
            return True, self.snapshot[key]
        return False, None

    def record_hit(
        self, ordinal: int, site_idx: int, key: Hashable, tag: int
    ) -> None:
        self._record(ordinal, site_idx, key, tag, "hit", None)

    def record_new(
        self,
        ordinal: int,
        site_idx: int,
        key: Hashable,
        tag: int,
        value: Any,
    ) -> None:
        self._record(ordinal, site_idx, key, tag, "new", value)

    def _record(
        self,
        ordinal: int,
        site_idx: int,
        key: Hashable,
        tag: int,
        kind: str,
        value: Any,
    ) -> None:
        event_key = (ordinal, site_idx, key)
        event = self.events.get(event_key)
        if event is None:
            self.events[event_key] = [kind, tag, value]
        elif tag < event[1]:
            event[1] = tag


def merge_cache_events(
    contexts: list[ShardContext],
) -> list[tuple[tuple, str, Hashable, Any]]:
    """Merge per-shard cache events into one canonical replay order.

    Events for the same ``(ordinal, site_idx, key)`` across shards keep
    the minimum first-occurrence tag (several shards may have seen the
    key; they all recorded the same kind and value).  The result is
    sorted by ``(ordinal, site_idx, tag)`` — i.e. by call site in plan
    order, then by global first occurrence — which is exactly the order
    the unsharded path touches the cache in, modulo morsel batching.
    """
    merged: dict[tuple, list] = {}
    for context in contexts:
        for event_key, (kind, tag, value) in context.events.items():
            event = merged.get(event_key)
            if event is None:
                merged[event_key] = [kind, tag, value]
            elif tag < event[1]:
                event[1] = tag
    ordered = sorted(
        merged.items(), key=lambda item: (item[0][0], item[0][1], item[1][1])
    )
    return [
        ((ordinal, site_idx), kind, key, value)
        for (ordinal, site_idx, key), (kind, tag, value) in ordered
    ]
