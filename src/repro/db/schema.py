"""Table schema definitions: columns, primary keys, and foreign keys."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.db.types import DataType
from repro.errors import SchemaError

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_ ]*$")


def _check_identifier(name: str, what: str) -> None:
    if not name or not _IDENTIFIER_RE.match(name):
        raise SchemaError(f"invalid {what} name: {name!r}")


@dataclass(frozen=True)
class Column:
    """A single column declaration.

    BIRD schemas contain column names with embedded spaces (for example
    ``"Academic Year"``), so identifiers permit interior spaces; SQL
    references to such columns must use quoted identifiers.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")


@dataclass(frozen=True)
class ForeignKey:
    """A declared reference from ``column`` to ``parent_table.parent_column``.

    Foreign keys are metadata used by schema rendering (the Text2SQL prompt
    includes them) and by referential-integrity checks on insert when the
    owning :class:`~repro.db.catalog.Database` enables enforcement.
    """

    column: str
    parent_table: str
    parent_column: str


class TableSchema:
    """Ordered column set plus key metadata for one table."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        foreign_keys: list[ForeignKey] | None = None,
    ) -> None:
        _check_identifier(name, "table")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            seen.add(lowered)
        self.name = name
        self.columns = list(columns)
        self.foreign_keys = list(foreign_keys or [])
        self._index_by_name = {
            column.name.lower(): position
            for position, column in enumerate(self.columns)
        }
        for fk in self.foreign_keys:
            if fk.column.lower() not in self._index_by_name:
                raise SchemaError(
                    f"foreign key column {fk.column!r} not in table {name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> list[Column]:
        return [column for column in self.columns if column.primary_key]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def column_index(self, name: str) -> int:
        """Position of ``name`` (case-insensitive); raises SchemaError."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError as exc:
            raise SchemaError(
                f"no column {name!r} in table {self.name!r}"
            ) from exc

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def to_create_sql(self) -> str:
        """Render as a CREATE TABLE statement.

        This is the schema encoding fed to the LM in the Text2SQL prompt;
        the paper (Appendix B.1) uses the BIRD prompt format, which is a
        plain CREATE TABLE listing.
        """
        lines = []
        for column in self.columns:
            quoted = _quote_identifier(column.name)
            parts = [f"    {quoted} {column.dtype.value}"]
            if column.primary_key:
                parts.append("PRIMARY KEY")
            if not column.nullable:
                parts.append("NOT NULL")
            lines.append(" ".join(parts))
        for fk in self.foreign_keys:
            lines.append(
                f"    FOREIGN KEY ({_quote_identifier(fk.column)}) "
                f"REFERENCES {fk.parent_table}"
                f"({_quote_identifier(fk.parent_column)})"
            )
        body = ",\n".join(lines)
        return f"CREATE TABLE {self.name}\n(\n{body}\n)"

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


def _quote_identifier(name: str) -> str:
    """Quote an identifier when it needs quoting (spaces, keywords-safe)."""
    if re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", name):
        return name
    return '"' + name.replace('"', '""') + '"'
