"""The Database: catalog of tables plus the SQL execution facade."""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

from repro.db import types as dbtypes
from repro.db.expr import ExpressionCompiler
from repro.db.functions import BatchFunction, FunctionRegistry
from repro.db.plan import UDFExecContext
from repro.db.planner import Planner
from repro.db.shard import PartitionSpec, ShardRuntime
from repro.db.udfcache import UDFMemoCache
from repro.db.result import ResultSet, RowLayout
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.db.table import Table
from repro.errors import AnalysisError, PlanningError, SchemaError


#: ``EXPLAIN ANALYZE <select>`` prefix, handled before the parser sees
#: the statement (the grammar itself stays SELECT-only).
_EXPLAIN_ANALYZE = re.compile(r"^\s*EXPLAIN\s+ANALYZE\b\s*", re.IGNORECASE)


def _analysis_error(report) -> AnalysisError:
    """Flatten a rejecting QueryReport into one AnalysisError."""
    errors = report.errors
    head = f"{errors[0].code}: {errors[0].message}"
    if len(errors) > 1:
        head += f" (+{len(errors) - 1} more)"
    return AnalysisError(f"static analysis rejected query: {head}", report)


class Database:
    """An in-memory relational database with a SQL interface.

    This is the reproduction's stand-in for SQLite3.  Language-model UDFs
    registered via :meth:`register_udf` become callable inside SQL, which
    is how a TAG query-execution step can push semantic reasoning into
    ``exec`` (paper §2.1/§3, "Database Execution Engine and API").
    """

    def __init__(
        self, name: str = "main", udf_cache_capacity: int = 4096
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self.functions = FunctionRegistry()
        #: Cross-statement memo of expensive-UDF results, shared by
        #: every batched execution against this database.  Capacity 0
        #: disables it (intra-morsel dedup still applies).
        self.udf_cache = UDFMemoCache(udf_cache_capacity)
        self._udf_usage: Any = None
        self._udf_metrics: Any = None
        #: Worker count / LM host for shard-parallel execution; scans
        #: only shard once a table opts in via :meth:`set_partitioning`.
        self.shard_runtime = ShardRuntime()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table from ``schema``; errors if it exists."""
        key = schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (case-insensitive); errors if absent."""
        try:
            del self._tables[name.lower()]
        except KeyError as exc:
            raise SchemaError(f"no table named {name!r}") from exc

    def table(self, name: str) -> Table:
        """Look up a table by name (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise PlanningError(f"no table named {name!r}") from exc

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        """Declared table names, in creation order."""
        return [table.schema.name for table in self._tables.values()]

    def insert(
        self,
        table_name: str,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]],
    ) -> int:
        """Bulk-insert rows (sequences or mappings); returns the count."""
        return self.table(table_name).insert_many(rows)

    def create_index(self, table_name: str, column_name: str) -> None:
        """Build a hash index for equality lookups on one column."""
        self.table(table_name).create_index(column_name)

    def set_partitioning(
        self,
        table_name: str,
        column: str,
        shards: int | None = None,
        kind: str = "hash",
        bounds: Sequence[Any] | None = None,
    ) -> PartitionSpec:
        """Partition a table on ``column`` for shard-parallel scans.

        ``kind="hash"`` needs ``shards``; ``kind="range"`` derives the
        shard count from ``bounds`` (``len(bounds) + 1`` shards).  The
        planner shards eligible scans of a partitioned table into
        :class:`~repro.db.plan.Exchange` pipelines — results, ordering,
        traces, and shared counters are identical at any shard/worker
        count (see DESIGN.md §16).  Returns the installed spec.
        """
        if kind == "hash":
            if shards is None:
                raise SchemaError("hash partitioning requires shards")
            spec = PartitionSpec.hashed(column, shards)
        elif kind == "range":
            spec = PartitionSpec.ranged(column, tuple(bounds or ()))
        else:
            raise SchemaError(
                f"partition kind must be 'hash' or 'range', got {kind!r}"
            )
        self.table(table_name).set_partitioning(spec)
        return spec

    def clear_partitioning(self, table_name: str) -> None:
        """Remove a table's partitioning; its scans stop sharding."""
        self.table(table_name).set_partitioning(None)

    def configure_sharding(
        self, workers: int = 4, lm: Any = None
    ) -> ShardRuntime:
        """Set the shard executor's worker budget and LM host.

        ``lm`` is the serving-layer :class:`~repro.serve.BatchingLM`
        (or compatible facade) shard threads open sessions on, letting
        concurrent shards' UDF morsels coalesce at its flush barrier;
        without one, UDF-bearing shards execute sequentially so the
        simulated LM's accounting stays deterministic.
        """
        self.shard_runtime = ShardRuntime(workers=workers, lm=lm)
        return self.shard_runtime

    # ------------------------------------------------------------------
    # UDFs
    # ------------------------------------------------------------------

    def register_udf(
        self,
        name: str,
        function: Callable[..., dbtypes.SQLValue],
        expensive: bool = False,
        batch: BatchFunction | None = None,
        cheap: Callable[..., dbtypes.SQLValue] | None = None,
        cheap_batch: BatchFunction | None = None,
    ) -> None:
        """Expose a Python callable (e.g. an LM) as a SQL function.

        ``batch`` optionally supplies a vectorised form (see
        :meth:`repro.db.functions.FunctionRegistry.register_scalar`);
        the batched execution path dispatches it once per morsel of
        distinct argument tuples.

        ``cheap`` (and optional ``cheap_batch``) register a cheap
        classifier tier for the optimizer's *cascade* route: it must
        return exactly what ``function`` would, or ``None`` to escalate
        the tuple to the expensive tier.
        """
        self.functions.register_scalar(
            name,
            function,
            expensive=expensive,
            batch=batch,
            cheap=cheap,
            cheap_batch=cheap_batch,
        )

    def bind_udf_meters(
        self, usage: Any = None, metrics: Any = None
    ) -> None:
        """Mirror UDF-cache counters into ``usage`` and/or ``metrics``.

        ``usage`` is a :class:`repro.lm.usage.Usage` (its
        ``udf_cache_hits``/``udf_cache_misses`` fields are
        incremented); ``metrics`` is a
        :class:`repro.obs.metrics.MetricsRegistry` (duck-typed).  The
        batched operators' per-node ``exec_stats`` stay the canonical
        meter; these are mirrors of the same increments.
        """
        self._udf_usage = usage
        self._udf_metrics = metrics

    def _udf_exec_context(self) -> UDFExecContext:
        return UDFExecContext(
            cache=self.udf_cache,
            usage=self._udf_usage,
            metrics=self._udf_metrics,
        )

    def _planner(
        self,
        optimize: bool,
        udf_batch_size: int | None,
        optimizer: Any = None,
    ) -> Planner:
        return Planner(
            self,
            self.functions,
            optimize=optimize,
            udf_batch_size=udf_batch_size,
            udf_context=(
                self._udf_exec_context()
                if udf_batch_size is not None
                else None
            ),
            optimizer=optimizer,
        )

    def _prepare_select(
        self,
        statement: ast.Select,
        optimize: bool,
        udf_batch_size: "int | str | None",
    ) -> tuple[Planner, Any]:
        """Resolve the route and build the planner for one SELECT.

        ``udf_batch_size`` semantics: the default ``"auto"`` delegates
        the choice to the cost-based optimizer (per-row for purely
        relational statements, a distinct-value-bounded morsel size —
        or the cascade route — for statements with expensive UDFs);
        ``None`` pins the per-row oracle path; an int pins that morsel
        size.  With ``optimize=False`` there is no optimizer: ``"auto"``
        degrades to per-row, ints are still honored (for ablations).
        """
        optimizer = None
        if optimize:
            from repro.db.optimizer import QueryOptimizer

            optimizer = QueryOptimizer(self)
            udf_batch_size = optimizer.choose_route(
                statement, udf_batch_size
            )
        elif udf_batch_size == "auto":
            udf_batch_size = None
        return (
            self._planner(optimize, udf_batch_size, optimizer),  # type: ignore[arg-type]
            optimizer,
        )

    def _meter_optimizer(self, optimizer: Any) -> None:
        if optimizer is not None:
            optimizer.report.meter(self._udf_usage, self._udf_metrics)

    def _meter_truncation(self, dropped: int) -> None:
        """Mirror ``max_rows`` row drops into the bound usage/metrics."""
        if self._udf_usage is not None:
            self._udf_usage.rows_truncated += dropped
        if self._udf_metrics is not None:
            self._udf_metrics.counter(
                "repro_exec_rows_truncated_total"
            ).inc(dropped)

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        optimize: bool = True,
        analyze: bool = False,
        udf_batch_size: "int | str | None" = "auto",
        max_rows: int | None = None,
    ) -> ResultSet:
        """Parse and run one SQL statement.

        ``max_rows`` caps the rows a SELECT returns.  Truncation is
        never silent: every dropped row is metered into the bound
        usage/metrics (``Usage.rows_truncated``,
        ``repro_exec_rows_truncated_total`` — see
        :meth:`bind_udf_meters`) and EXPLAIN ANALYZE output carries a
        truncation note.

        With ``analyze=True``, SELECTs are pre-flighted through the
        static analyzer and an :class:`~repro.errors.AnalysisError`
        (carrying the full :class:`~repro.analysis.QueryReport`) is
        raised before any plan is built when error-severity diagnostics
        are found.

        ``udf_batch_size`` controls how expensive-UDF filters and
        projections execute.  The default ``"auto"`` lets the
        cost-based optimizer choose (see
        :class:`repro.db.optimizer.QueryOptimizer`); ``None`` pins the
        per-row oracle path; an int ``N`` pins the vectorized operators
        (:class:`~repro.db.plan.BatchedFilter` /
        :class:`~repro.db.plan.BatchedProject`): morsels of N rows,
        one batch dispatch per morsel of distinct argument tuples,
        memoized across statements via :attr:`udf_cache`.  Results are
        identical to the default per-row path (property-tested); only
        the LM call pattern changes.

        ``EXPLAIN ANALYZE <select>`` executes the query through
        counting instrumentation and returns the annotated plan tree
        (per-operator rows in/out and virtual time) as a one-column
        ``plan`` result — see :meth:`explain_analyze` for the
        structured form.
        """
        prefixed = _EXPLAIN_ANALYZE.match(sql)
        if prefixed is not None:
            analyzed = self.explain_analyze(
                sql[prefixed.end() :],
                optimize=optimize,
                analyze=analyze,
                udf_batch_size=udf_batch_size,
                max_rows=max_rows,
            )
            return ResultSet(
                ["plan"],
                [(line,) for line in analyzed.render().splitlines()],
            )
        statement = parse_statement(sql)
        if isinstance(statement, ast.Select):
            if analyze:
                report = self.analyze(statement, source=sql)
                if not report.ok:
                    raise _analysis_error(report)
            planner, optimizer = self._prepare_select(
                statement, optimize, udf_batch_size
            )
            result = planner.run_select(statement)
            self._meter_optimizer(optimizer)
            if max_rows is not None and len(result.rows) > max_rows:
                self._meter_truncation(len(result.rows) - max_rows)
                result = ResultSet(
                    result.columns, result.rows[:max_rows]
                )
            return result
        if isinstance(statement, ast.CreateTable):
            self._execute_create(statement)
            return ResultSet([], [])
        if isinstance(statement, ast.Insert):
            inserted = self._execute_insert(statement)
            return ResultSet(["rows_inserted"], [(inserted,)])
        if isinstance(statement, ast.Update):
            updated = self._execute_update(statement)
            return ResultSet(["rows_updated"], [(updated,)])
        if isinstance(statement, ast.Delete):
            deleted = self._execute_delete(statement)
            return ResultSet(["rows_deleted"], [(deleted,)])
        raise PlanningError(  # pragma: no cover - parser covers all cases
            f"unsupported statement {type(statement).__name__}"
        )

    def analyze(self, sql: str | ast.Select, source: str = ""):
        """Statically analyze a SELECT against this catalog.

        Returns a :class:`repro.analysis.QueryReport` with diagnostics
        and an LM-cost estimate; never raises for invalid SQL (syntax
        errors become ``ANA001`` diagnostics).
        """
        from repro.analysis import SQLAnalyzer

        return SQLAnalyzer(self).analyze(sql, source=source)

    def explain_analyze(
        self,
        sql: str,
        optimize: bool = True,
        analyze: bool = False,
        udf_batch_size: "int | str | None" = "auto",
        max_rows: int | None = None,
    ):
        """Execute a SELECT with per-operator instrumentation.

        Returns a :class:`repro.obs.explain.AnalyzedQuery`: the normal
        :class:`ResultSet` plus an operator-statistics tree (rows
        in/out and deterministic virtual time per plan node) rendered
        by ``.render()``.  The counters reflect what actually flowed —
        a ``LIMIT`` that stops pulling early shows up in its children's
        ``rows_out``.  Under ``udf_batch_size``, batched operators
        additionally report their LM call/batch and UDF-cache counters
        per node.  For statements involving expensive UDFs the render
        ends with the optimizer's decision footer.
        """
        from repro.obs.explain import AnalyzedQuery, instrument_plan

        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise PlanningError("EXPLAIN ANALYZE only supports SELECT")
        if analyze:
            report = self.analyze(statement, source=sql)
            if not report.ok:
                raise _analysis_error(report)
        planner, optimizer = self._prepare_select(
            statement, optimize, udf_batch_size
        )
        plan, names = planner.plan_select(statement)
        proxy, stats = instrument_plan(plan)
        rows = list(proxy.execute())
        self._meter_optimizer(optimizer)
        truncated = None
        if max_rows is not None and len(rows) > max_rows:
            truncated = (max_rows, len(rows))
            self._meter_truncation(len(rows) - max_rows)
            rows = rows[:max_rows]
        return AnalyzedQuery(
            stats=stats,
            result=ResultSet(names, rows),
            optimizer=(
                optimizer.report
                if optimizer is not None and optimizer.report.decisions
                else None
            ),
            truncated=truncated,
        )

    def explain(
        self,
        sql: str,
        optimize: bool = True,
        udf_batch_size: "int | str | None" = "auto",
    ) -> str:
        """Render the physical plan for a SELECT (diagnostics/tests).

        Statements with expensive UDFs get an ``Optimizer:`` footer
        listing every decision (route, batch size, reorders, pushdowns)
        with the cost numbers that justified it.
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise PlanningError("EXPLAIN only supports SELECT")
        planner, optimizer = self._prepare_select(
            statement, optimize, udf_batch_size
        )
        plan, _ = planner.plan_select(statement)
        rendered = plan.explain()
        self._meter_optimizer(optimizer)
        if optimizer is not None and optimizer.report.decisions:
            rendered += "\n" + optimizer.report.render()
        return rendered

    def schema_sql(self) -> str:
        """All CREATE TABLE statements, in the BIRD prompt encoding."""
        return "\n\n".join(
            table.schema.to_create_sql()
            for table in self._tables.values()
        )

    # ------------------------------------------------------------------
    # statement handlers
    # ------------------------------------------------------------------

    def _execute_create(self, statement: ast.CreateTable) -> None:
        columns = [
            Column(
                definition.name,
                dbtypes.DataType.from_sql(definition.type_name),
                nullable=not (definition.not_null or definition.primary_key),
                primary_key=definition.primary_key,
            )
            for definition in statement.columns
        ]
        foreign_keys = [
            ForeignKey(fk.column, fk.parent_table, fk.parent_column)
            for fk in statement.foreign_keys
        ]
        self.create_table(TableSchema(statement.name, columns, foreign_keys))

    def _execute_insert(self, statement: ast.Insert) -> int:
        table = self.table(statement.table)
        compiler = ExpressionCompiler(RowLayout([]), self.functions)
        count = 0
        for row_expressions in statement.rows:
            values = [
                compiler.compile(expression)(())
                for expression in row_expressions
            ]
            if statement.columns:
                table.insert(dict(zip(statement.columns, values)))
            else:
                table.insert(values)
            count += 1
        return count

    def _execute_update(self, statement: ast.Update) -> int:
        from repro.db.expr import is_true

        table = self.table(statement.table)
        layout = RowLayout(
            [
                (statement.table, name)
                for name in table.schema.column_names
            ]
        )
        compiler = ExpressionCompiler(layout, self.functions)
        predicate = (
            compiler.compile(statement.where)
            if statement.where is not None
            else None
        )
        assignments = [
            (table.schema.column_index(column), compiler.compile(value))
            for column, value in statement.assignments
        ]
        updated = 0
        new_rows: list[list] = []
        for row in table.rows:
            if predicate is None or is_true(predicate(row)):
                updated += 1
                mutable = list(row)
                for position, evaluate in assignments:
                    mutable[position] = evaluate(row)
                new_rows.append(mutable)
            else:
                new_rows.append(list(row))
        table.replace_all(new_rows)
        return updated

    def _execute_delete(self, statement: ast.Delete) -> int:
        from repro.db.expr import is_true

        table = self.table(statement.table)
        layout = RowLayout(
            [
                (statement.table, name)
                for name in table.schema.column_names
            ]
        )
        compiler = ExpressionCompiler(layout, self.functions)
        predicate = (
            compiler.compile(statement.where)
            if statement.where is not None
            else None
        )
        survivors = [
            list(row)
            for row in table.rows
            if predicate is not None and not is_true(predicate(row))
        ]
        deleted = len(table) - len(survivors)
        table.replace_all(survivors)
        return deleted

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names})"
