"""Group-by aggregation over :class:`~repro.frame.frame.DataFrame`."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import FrameError
from repro.frame import frame as frame_module

#: Named reductions accepted by :meth:`GroupBy.agg`.
_REDUCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": lambda values: sum(v for v in values if v is not None),
    "mean": lambda values: (
        (lambda kept: sum(kept) / len(kept) if kept else None)(
            [v for v in values if v is not None]
        )
    ),
    "min": lambda values: (
        min((v for v in values if v is not None), default=None)
    ),
    "max": lambda values: (
        max((v for v in values if v is not None), default=None)
    ),
    "first": lambda values: values[0] if values else None,
    "list": list,
}


class GroupBy:
    """Lazy grouping: holds group keys -> row indices."""

    def __init__(
        self, frame: "frame_module.DataFrame", by: list[str]
    ) -> None:
        for name in by:
            if name not in frame.columns:
                raise FrameError(f"no column {name!r} to group by")
        self._frame = frame
        self._by = by
        self._groups: dict[tuple, list[int]] = {}
        self._order: list[tuple] = []
        key_columns = [frame[name].values for name in by]
        for index in range(len(frame)):
            key = tuple(column[index] for column in key_columns)
            if key not in self._groups:
                self._groups[key] = []
                self._order.append(key)
            self._groups[key].append(index)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple, list[int]]:
        return dict(self._groups)

    def agg(
        self, **aggregations: "tuple[str, str] | str"
    ) -> "frame_module.DataFrame":
        """Aggregate each group.

        Each keyword is an output column; its value is either
        ``(source_column, reduction_name)`` or a bare reduction name
        applied to the first grouping key (useful for ``count``)::

            df.groupby("genre").agg(n=("title", "count"),
                                    total=("revenue", "sum"))
        """
        out: dict[str, list[Any]] = {name: [] for name in self._by}
        for name in aggregations:
            out[name] = []
        for key in self._order:
            indices = self._groups[key]
            for position, by_name in enumerate(self._by):
                out[by_name].append(key[position])
            for name, spec in aggregations.items():
                if isinstance(spec, str):
                    source, reduction_name = self._by[0], spec
                else:
                    source, reduction_name = spec
                reduction = _REDUCTIONS.get(reduction_name)
                if reduction is None:
                    raise FrameError(
                        f"unknown aggregation {reduction_name!r}"
                    )
                values = [
                    self._frame[source].values[index] for index in indices
                ]
                out[name].append(reduction(values))
        return frame_module.DataFrame(out)

    def size(self) -> "frame_module.DataFrame":
        """Row count per group, as a frame with a ``size`` column."""
        out: dict[str, list[Any]] = {name: [] for name in self._by}
        out["size"] = []
        for key in self._order:
            for position, by_name in enumerate(self._by):
                out[by_name].append(key[position])
            out["size"].append(len(self._groups[key]))
        return frame_module.DataFrame(out)

    def apply(
        self, function: Callable[["frame_module.DataFrame"], Any]
    ) -> list[Any]:
        """Call ``function`` on each group's sub-frame, in group order."""
        return [
            function(self._frame.take(self._groups[key]))
            for key in self._order
        ]
