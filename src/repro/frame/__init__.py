"""A small columnar dataframe.

The paper's hand-written TAG pipelines (Appendix C) are pandas+LOTUS
programs.  pandas is not a dependency of this reproduction, so this
package provides the dataframe surface those pipelines need — boolean
filtering, sorting with a key function, merging, group-by aggregation —
and :mod:`repro.semantic` layers the LOTUS-style semantic operators on
top of it.
"""

from repro.frame.frame import Column, DataFrame, merge
from repro.frame.groupby import GroupBy
from repro.frame.io import (
    export_dataset,
    load_frames,
    read_csv,
    write_csv,
)

__all__ = [
    "Column",
    "DataFrame",
    "GroupBy",
    "export_dataset",
    "load_frames",
    "merge",
    "read_csv",
    "write_csv",
]
