"""Columnar DataFrame and Column types.

Deliberately a small, explicit subset of the pandas API — exactly the
operations the TAG pipelines and benchmark code need.  Column-wise
comparisons produce boolean :class:`Column` masks usable for filtering;
``sort_values`` accepts a key function (the paper's match-based pipeline
sorts by ``abs(Longitude)``); ``merge`` performs hash joins.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.db.types import sort_key
from repro.errors import FrameError

if TYPE_CHECKING:  # pragma: no cover
    from repro.frame.groupby import GroupBy


class Column:
    """One named column of values; supports vectorised comparisons."""

    def __init__(self, name: str, values: Sequence[Any]) -> None:
        self.name = name
        self.values = list(values)

    # -- basic container protocol ---------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def tolist(self) -> list[Any]:
        return list(self.values)

    def to_list(self) -> list[Any]:
        return list(self.values)

    # -- elementwise operations ------------------------------------------

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Column":
        if isinstance(other, Column):
            if len(other) != len(self):
                raise FrameError("column length mismatch in comparison")
            pairs = zip(self.values, other.values)
        else:
            pairs = ((value, other) for value in self.values)
        mask = [
            False if left is None or right is None else op(left, right)
            for left, right in pairs
        ]
        return Column(self.name, mask)

    def __eq__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a >= b)

    def __hash__(self) -> int:  # Columns are mutable views; identity hash.
        return id(self)

    def __and__(self, other: "Column") -> "Column":
        if len(other) != len(self):
            raise FrameError("column length mismatch in '&'")
        return Column(
            self.name,
            [bool(a) and bool(b) for a, b in zip(self.values, other.values)],
        )

    def __or__(self, other: "Column") -> "Column":
        if len(other) != len(self):
            raise FrameError("column length mismatch in '|'")
        return Column(
            self.name,
            [bool(a) or bool(b) for a, b in zip(self.values, other.values)],
        )

    def __invert__(self) -> "Column":
        return Column(self.name, [not bool(value) for value in self.values])

    def isin(self, values: Iterable[Any]) -> "Column":
        lookup = set(values)
        return Column(self.name, [value in lookup for value in self.values])

    def notna(self) -> "Column":
        return Column(self.name, [value is not None for value in self.values])

    def isna(self) -> "Column":
        return Column(self.name, [value is None for value in self.values])

    def apply(self, function: Callable[[Any], Any]) -> "Column":
        return Column(self.name, [function(value) for value in self.values])

    def str_contains(self, needle: str, case: bool = False) -> "Column":
        """Substring-match mask over text values (NULL-safe)."""
        if case:
            test = lambda text: needle in text  # noqa: E731
        else:
            lowered = needle.lower()
            test = lambda text: lowered in text.lower()  # noqa: E731
        return Column(
            self.name,
            [
                isinstance(value, str) and test(value)
                for value in self.values
            ],
        )

    # -- reductions --------------------------------------------------------

    def unique(self) -> list[Any]:
        """Distinct values, first-occurrence order (NULLs excluded)."""
        seen: set[Any] = set()
        result: list[Any] = []
        for value in self.values:
            if value is None or value in seen:
                continue
            seen.add(value)
            result.append(value)
        return result

    def _non_null(self) -> list[Any]:
        return [value for value in self.values if value is not None]

    def sum(self) -> Any:
        return sum(self._non_null())

    def mean(self) -> float | None:
        values = self._non_null()
        return sum(values) / len(values) if values else None

    def min(self) -> Any:
        values = self._non_null()
        return min(values, key=sort_key) if values else None

    def max(self) -> Any:
        values = self._non_null()
        return max(values, key=sort_key) if values else None

    def count(self) -> int:
        return len(self._non_null())

    def nunique(self) -> int:
        return len(self.unique())

    def __repr__(self) -> str:
        preview = ", ".join(repr(value) for value in self.values[:5])
        suffix = ", ..." if len(self.values) > 5 else ""
        return f"Column({self.name!r}, [{preview}{suffix}])"


class DataFrame:
    """A columnar table with pandas-flavoured selection and transforms."""

    def __init__(self, data: dict[str, Sequence[Any]] | None = None) -> None:
        self._data: dict[str, list[Any]] = {}
        if data:
            lengths = {len(values) for values in data.values()}
            if len(lengths) > 1:
                raise FrameError(
                    f"columns have unequal lengths: "
                    f"{ {k: len(v) for k, v in data.items()} }"
                )
            self._data = {name: list(values) for name, values in data.items()}

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rows(
        cls, columns: Sequence[str], rows: Iterable[Sequence[Any]]
    ) -> "DataFrame":
        materialised = [list(row) for row in rows]
        data = {
            name: [row[position] for row in materialised]
            for position, name in enumerate(columns)
        }
        if not data:
            raise FrameError("from_rows requires at least one column")
        return cls(data)

    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]]) -> "DataFrame":
        materialised = list(records)
        if not materialised:
            return cls({})
        columns: list[str] = []
        for record in materialised:
            for key in record:
                if key not in columns:
                    columns.append(key)
        return cls(
            {
                name: [record.get(name) for record in materialised]
                for name in columns
            }
        )

    # -- shape / access ------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        return list(self._data)

    def __len__(self) -> int:
        if not self._data:
            return 0
        return len(next(iter(self._data.values())))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, key: "str | list[str] | Column") -> Any:
        if isinstance(key, str):
            try:
                return Column(key, self._data[key])
            except KeyError as exc:
                raise FrameError(f"no column {key!r}") from exc
        if isinstance(key, list):
            missing = [name for name in key if name not in self._data]
            if missing:
                raise FrameError(f"no column(s) {missing}")
            return DataFrame({name: self._data[name] for name in key})
        if isinstance(key, Column):
            return self.filter_mask(key.values)
        raise FrameError(f"unsupported selection key {type(key).__name__}")

    def __setitem__(self, name: str, values: "Column | Sequence[Any]") -> None:
        if isinstance(values, Column):
            values = values.values
        values = list(values)
        if self._data and len(values) != len(self):
            raise FrameError(
                f"assigned column length {len(values)} != frame length "
                f"{len(self)}"
            )
        self._data[name] = values

    def row(self, index: int) -> dict[str, Any]:
        return {name: values[index] for name, values in self._data.items()}

    def iterrows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for index in range(len(self)):
            yield index, self.row(index)

    def to_records(self) -> list[dict[str, Any]]:
        return [self.row(index) for index in range(len(self))]

    # -- transforms -----------------------------------------------------------

    def filter_mask(self, mask: Sequence[Any]) -> "DataFrame":
        if len(mask) != len(self):
            raise FrameError(
                f"mask length {len(mask)} != frame length {len(self)}"
            )
        keep = [index for index, flag in enumerate(mask) if flag]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "DataFrame":
        return DataFrame(
            {
                name: [values[index] for index in indices]
                for name, values in self._data.items()
            }
        )

    def head(self, count: int = 5) -> "DataFrame":
        return self.take(range(min(count, len(self))))

    def sort_values(
        self,
        by: str | list[str],
        ascending: bool | list[bool] = True,
        key: Callable[[Any], Any] | None = None,
    ) -> "DataFrame":
        names = [by] if isinstance(by, str) else list(by)
        flags = (
            [ascending] * len(names)
            if isinstance(ascending, bool)
            else list(ascending)
        )
        if len(flags) != len(names):
            raise FrameError("ascending list must match sort columns")
        indices = list(range(len(self)))
        for name, flag in reversed(list(zip(names, flags))):
            values = self._data.get(name)
            if values is None:
                raise FrameError(f"no column {name!r}")

            def sorter(index: int, values=values) -> tuple:
                value = values[index]
                if key is not None and value is not None:
                    value = key(value)
                return sort_key(value)

            indices.sort(key=sorter, reverse=not flag)
        return self.take(indices)

    def drop_duplicates(
        self, subset: str | list[str] | None = None
    ) -> "DataFrame":
        names = (
            self.columns
            if subset is None
            else ([subset] if isinstance(subset, str) else list(subset))
        )
        seen: set[tuple] = set()
        keep: list[int] = []
        for index in range(len(self)):
            signature = tuple(self._data[name][index] for name in names)
            if signature in seen:
                continue
            seen.add(signature)
            keep.append(index)
        return self.take(keep)

    def rename(self, columns: dict[str, str]) -> "DataFrame":
        return DataFrame(
            {
                columns.get(name, name): values
                for name, values in self._data.items()
            }
        )

    def assign(self, **new_columns: Sequence[Any]) -> "DataFrame":
        frame = DataFrame(self._data)
        for name, values in new_columns.items():
            frame[name] = values
        return frame

    def groupby(self, by: str | list[str]) -> "GroupBy":
        from repro.frame.groupby import GroupBy

        names = [by] if isinstance(by, str) else list(by)
        return GroupBy(self, names)

    def __repr__(self) -> str:
        return f"DataFrame({len(self)} rows x {len(self.columns)} cols)"


def merge(
    left: DataFrame,
    right: DataFrame,
    left_on: str,
    right_on: str,
    how: str = "inner",
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Hash join of two frames on one key column each.

    pandas semantics for names: when ``left_on == right_on`` the key
    appears once in the output (unsuffixed); every other name present
    in both frames gets ``suffixes`` appended on its respective side.
    ``how`` may be ``inner`` or ``left``.
    """
    if how not in ("inner", "left"):
        raise FrameError(f"unsupported merge how={how!r}")
    if left_on not in left.columns:
        raise FrameError(f"left frame has no column {left_on!r}")
    if right_on not in right.columns:
        raise FrameError(f"right frame has no column {right_on!r}")

    shared_key = left_on if left_on == right_on else None
    overlap = set(left.columns) & set(right.columns)
    if shared_key is not None:
        overlap.discard(shared_key)
    left_names = {
        name: name + suffixes[0] if name in overlap else name
        for name in left.columns
    }
    right_names = {
        name: name + suffixes[1] if name in overlap else name
        for name in right.columns
    }
    right_output = [
        name for name in right.columns if name != shared_key
    ]

    buckets: dict[Any, list[int]] = {}
    right_keys = right[right_on].values
    for index, key in enumerate(right_keys):
        if key is None:
            continue
        buckets.setdefault(key, []).append(index)

    out: dict[str, list[Any]] = {
        left_names[name]: [] for name in left.columns
    }
    for name in right_output:
        out.setdefault(right_names[name], [])

    left_keys = left[left_on].values
    for left_index, key in enumerate(left_keys):
        matches = buckets.get(key, []) if key is not None else []
        if not matches and how == "left":
            left_row = left.row(left_index)
            for name in left.columns:
                out[left_names[name]].append(left_row[name])
            for name in right_output:
                out[right_names[name]].append(None)
            continue
        for right_index in matches:
            left_row = left.row(left_index)
            right_row = right.row(right_index)
            for name in left.columns:
                out[left_names[name]].append(left_row[name])
            for name in right_output:
                out[right_names[name]].append(right_row[name])
    return DataFrame(out)
