"""CSV persistence for dataframes and datasets.

The paper's hand-written pipelines read the BIRD tables as CSV files
("../pandas_dfs/california_schools/schools.csv", Appendix C).  These
helpers give the same workflow: export a generated dataset to a CSV
directory once, then load frames from disk.

Values round-trip losslessly: NULL as an empty field, booleans as
true/false, numbers re-inferred on read.
"""

from __future__ import annotations

import csv
import pathlib

from repro.errors import FrameError
from repro.frame.frame import DataFrame


def write_csv(frame: DataFrame, path: str | pathlib.Path) -> None:
    """Write a frame to ``path`` as UTF-8 CSV with a header row."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(frame.columns)
        for _, record in frame.iterrows():
            writer.writerow(
                [_render(record[name]) for name in frame.columns]
            )


def read_csv(path: str | pathlib.Path) -> DataFrame:
    """Read a CSV written by :func:`write_csv` (or any simple CSV)."""
    source = pathlib.Path(path)
    if not source.exists():
        raise FrameError(f"no such CSV file: {source}")
    with source.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise FrameError(f"empty CSV file: {source}") from exc
        rows = [[_parse(cell) for cell in row] for row in reader]
    for row in rows:
        if len(row) != len(header):
            raise FrameError(
                f"ragged CSV row in {source}: expected {len(header)} "
                f"fields, got {len(row)}"
            )
    return DataFrame.from_rows(header, rows)


def _render(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(cell: str) -> object:
    if cell == "":
        return None
    if cell == "true":
        return True
    if cell == "false":
        return False
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    return cell


def export_dataset(dataset, directory: str | pathlib.Path) -> list[str]:
    """Write every frame of a dataset as ``<dir>/<table>.csv``.

    Returns the written file paths, mirroring the per-domain CSV layout
    the paper's pipelines consume.
    """
    base = pathlib.Path(directory)
    written = []
    for name, frame in dataset.frames.items():
        path = base / f"{name}.csv"
        write_csv(frame, path)
        written.append(str(path))
    return written


def load_frames(directory: str | pathlib.Path) -> dict[str, DataFrame]:
    """Load every ``*.csv`` in a directory as {table_name: frame}."""
    base = pathlib.Path(directory)
    if not base.is_dir():
        raise FrameError(f"no such directory: {base}")
    frames = {
        path.stem: read_csv(path) for path in sorted(base.glob("*.csv"))
    }
    if not frames:
        raise FrameError(f"no CSV files in {base}")
    return frames
