"""The reproduction's shape must hold across seeds, not just seed 0.

Every seed regenerates the datasets, the LM's beliefs, and the judgment
noise; the paper's qualitative claims should survive all of it.
"""

import pytest

from repro.bench.runner import run_benchmark

TAG = "Hand-written TAG"
BASELINES = ["Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"]


@pytest.mark.parametrize("seed", [1, 2])
class TestSeedRobustness:
    @pytest.fixture(scope="class")
    def reports(self):
        return {}

    def _report(self, reports, seed):
        if seed not in reports:
            reports[seed] = run_benchmark(seed=seed)
        return reports[seed]

    def test_tag_dominates(self, reports, seed):
        report = self._report(reports, seed)
        tag = report.accuracy(TAG)
        assert tag >= 0.45
        for method in BASELINES:
            assert report.accuracy(method) <= 0.25
            assert tag - report.accuracy(method) >= 0.25

    def test_et_ordering(self, reports, seed):
        report = self._report(reports, seed)
        tag_et = report.mean_et(TAG)
        assert tag_et <= min(
            report.mean_et(method) for method in BASELINES
        ) * 1.1
        assert report.mean_et("Text2SQL + LM") == max(
            report.mean_et(method) for method in BASELINES + [TAG]
        )

    def test_datasets_actually_differ_from_seed0(self, reports, seed):
        from repro.data import load_domain

        base = load_domain("european_football_2", seed=0)
        other = load_domain("european_football_2", seed=seed)
        assert base.frame("Player").to_records() != (
            other.frame("Player").to_records()
        )
