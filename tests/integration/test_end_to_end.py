"""Integration tests: the full benchmark reproduces the paper's shape.

These assertions encode the qualitative claims of Tables 1-2 and
Figure 2 — who wins, by roughly what factor, where the failure modes
appear — not the paper's absolute numbers.
"""

import pytest

from repro.bench.runner import run_benchmark
from repro.bench.suites.aggregation import SEPANG_QUESTION


@pytest.fixture(scope="module")
def report():
    return run_benchmark(seed=0)


TAG = "Hand-written TAG"
BASELINES = ["Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"]


class TestTable1Shape:
    def test_baselines_never_exceed_twenty_five_percent(self, report):
        for method in BASELINES:
            assert report.accuracy(method) <= 0.25

    def test_tag_at_least_forty_percent_everywhere(self, report):
        for query_type in ("match", "comparison", "ranking"):
            assert report.accuracy(TAG, query_type=query_type) >= 0.40

    def test_tag_beats_every_baseline_by_wide_margin(self, report):
        tag = report.accuracy(TAG)
        assert tag >= 0.50
        for method in BASELINES:
            assert tag - report.accuracy(method) >= 0.30

    def test_rag_near_zero(self, report):
        assert report.accuracy("RAG") <= 0.05

    def test_text2sql_weak_on_ranking(self, report):
        assert report.accuracy("Text2SQL", query_type="ranking") <= 0.2

    def test_tag_fastest_or_nearly_fastest(self, report):
        tag_et = report.mean_et(TAG)
        fastest = min(report.mean_et(m) for m in BASELINES)
        assert tag_et <= fastest * 1.15

    def test_text2sql_lm_slowest(self, report):
        t2slm = report.mean_et("Text2SQL + LM")
        for method in BASELINES[:-1] + [TAG]:
            assert t2slm > report.mean_et(method)

    def test_tag_speedup_factor_matches_paper_scale(self, report):
        # Paper: "up to 3.1x lower execution time over other baselines".
        ratio = report.mean_et("Text2SQL + LM") / report.mean_et(TAG)
        assert 2.0 <= ratio <= 5.0


class TestTable2Shape:
    def test_tag_above_half_on_both_capabilities(self, report):
        assert report.accuracy(TAG, capability="knowledge") >= 0.5
        assert report.accuracy(TAG, capability="reasoning") >= 0.5

    def test_text2sql_poor_on_reasoning(self, report):
        assert report.accuracy(
            "Text2SQL", capability="reasoning"
        ) <= 0.10

    def test_text2sql_better_on_knowledge_than_reasoning(self, report):
        knowledge = report.accuracy("Text2SQL", capability="knowledge")
        reasoning = report.accuracy("Text2SQL", capability="reasoning")
        assert knowledge > reasoning

    def test_retrieval_methods_fail_both_capabilities(self, report):
        for method in ("RAG", "Retrieval + LM Rank"):
            for capability in ("knowledge", "reasoning"):
                assert report.accuracy(
                    method, capability=capability
                ) <= 0.10


class TestContextLengthFailures:
    def test_text2sql_lm_hits_context_errors(self, report):
        overflows = [
            record
            for record in report.records
            if record.method == "Text2SQL + LM"
            and record.diagnostics.get("context_errors")
        ]
        assert len(overflows) >= 5
        # Concentrated on match/comparison/aggregation over-selection,
        # as the paper observes.
        assert any(
            record.query_type in ("match", "comparison")
            for record in overflows
        )

    def test_other_methods_do_not_overflow(self, report):
        for record in report.records:
            if record.method in ("Text2SQL", "RAG", TAG):
                assert not record.diagnostics.get("context_errors")


class TestFigure2:
    def _answer(self, report, method):
        record = next(
            r
            for r in report.records
            if r.method == method and r.qid == "aggregation-k01"
        )
        return record.answer

    def test_question_is_the_paper_example(self, suite):
        assert any(s.question == SEPANG_QUESTION for s in suite)

    def test_tag_answer_covers_every_year(self, report):
        answer = self._answer(report, TAG)
        missing = [
            year for year in range(1999, 2018) if str(year) not in answer
        ]
        assert not missing

    def test_rag_answer_is_incomplete(self, report):
        answer = self._answer(report, "RAG")
        covered = sum(
            1 for year in range(1999, 2018) if str(year) in str(answer)
        )
        assert covered < 10

    def test_text2sql_lm_relies_on_parametric_knowledge(self, report):
        answer = self._answer(report, "Text2SQL + LM")
        assert "general knowledge" in answer
        assert "Malaysian Grand Prix" in answer

    def test_coverage_ordering(self, report):
        def coverage(method):
            answer = str(self._answer(report, method))
            return sum(
                1 for year in range(1999, 2018) if str(year) in answer
            )

        assert coverage(TAG) > coverage("RAG")
        assert coverage(TAG) == 19


class TestDeterminism:
    def test_summary_numbers_are_reproducible(self, report):
        again = run_benchmark(seed=0)
        for method in report.methods:
            assert report.accuracy(method) == again.accuracy(method)
            assert report.mean_et(method) == pytest.approx(
                again.mean_et(method)
            )
