"""Unit tests for the knowledge base and its fuzzy view."""

import pytest

from repro.knowledge import FuzzyKnowledge, KnowledgeBase


class TestKnowledgeBase:
    def test_default_is_populated(self, kb):
        assert len(kb) > 200

    def test_lookup_case_insensitive(self, kb):
        assert kb.person_height_cm("stephen curry") == 188.0

    def test_region_membership(self, kb):
        assert kb.is_in_region("Palo Alto", "silicon valley")
        assert not kb.is_in_region("Fresno", "silicon valley")
        assert not kb.is_in_region("Atlantis", "silicon valley")

    def test_cities_in_region(self, kb):
        bay = kb.cities_in_region("bay area")
        assert "San Francisco" in bay
        assert "Los Angeles" not in bay

    def test_race_years(self, kb):
        years = kb.race_years("Sepang International Circuit")
        assert years[0] == 1999
        assert years[-1] == 2017
        assert len(years) == 19

    def test_grand_prix_name(self, kb):
        assert kb.grand_prix_name("Sepang International Circuit") == (
            "Malaysian Grand Prix"
        )

    def test_uses_euro(self, kb):
        assert kb.uses_euro("Slovakia")
        assert not kb.uses_euro("Czech Republic")

    def test_confidence_validation(self):
        store = KnowledgeBase()
        with pytest.raises(ValueError):
            store.add("r", "s", True, confidence=0.0)
        with pytest.raises(ValueError):
            store.add("r", "s", True, confidence=1.5)

    def test_facts_for_relation(self, kb):
        facts = kb.facts_for_relation("height_cm")
        assert all(fact.relation == "height_cm" for fact in facts)
        assert len(facts) > 10


class TestFuzzyKnowledge:
    def test_full_confidence_facts_never_flip(self, kb):
        for seed in range(25):
            fuzzy = FuzzyKnowledge(kb, seed=seed)
            assert fuzzy.believed_height_cm("Stephen Curry") == 188.0
            assert fuzzy.believes_in_region("San Jose", "silicon valley")

    def test_determinism_per_seed(self, kb):
        first = FuzzyKnowledge(kb, seed=3)
        second = FuzzyKnowledge(kb, seed=3)
        for city in ("Gilroy", "Santa Cruz", "Fremont", "Vallejo"):
            assert first.believes_in_region(
                city, "bay area"
            ) == second.believes_in_region(city, "bay area")

    def test_marginal_facts_flip_across_seeds(self, kb):
        # Gilroy/Silicon Valley has confidence 0.55: across many seeds
        # the belief must disagree with the canonical value sometimes.
        canonical = kb.is_in_region("Gilroy", "silicon valley")
        beliefs = {
            FuzzyKnowledge(kb, seed=seed).believes_in_region(
                "Gilroy", "silicon valley"
            )
            for seed in range(40)
        }
        assert beliefs == {True, False}
        assert canonical is False

    def test_flip_rate_tracks_confidence(self, kb):
        flips = sum(
            FuzzyKnowledge(kb, seed=seed).believes_in_region(
                "Sacramento", "bay area"
            )
            for seed in range(200)
        )
        # Confidence 0.95 -> ~5% flips; allow generous slack.
        assert flips < 30

    def test_skepticism_zero_is_oracle(self, kb):
        fuzzy = FuzzyKnowledge(kb, seed=0, skepticism=0.0)
        for fact in kb.facts_for_relation("in_region"):
            city, region = fact.subject
            assert fuzzy.believes_in_region(city, region) == fact.value

    def test_numeric_drift_when_wrong(self, kb):
        # Find a seed where a low-confidence height is misremembered.
        for seed in range(60):
            fuzzy = FuzzyKnowledge(kb, seed=seed, skepticism=1.0)
            believed = fuzzy.believed_height_cm("Esteban Ocon")
            if believed != 186.0:
                assert believed == pytest.approx(186.0, rel=0.08)
                return
        pytest.fail("no drift observed over 60 seeds for a 0.7-conf fact")

    def test_tuple_facts_truncate_when_wrong(self, kb):
        canonical = kb.race_years("Baku City Circuit")
        for seed in range(80):
            fuzzy = FuzzyKnowledge(kb, seed=seed)
            believed = fuzzy.believed_race_years("Baku City Circuit")
            assert believed in (canonical, canonical[:-1])

    def test_unknown_subject_returns_default(self, kb):
        fuzzy = FuzzyKnowledge(kb, seed=0)
        assert fuzzy.believe("height_cm", "Nobody Real", None) is None
