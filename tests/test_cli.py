"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSuiteCommand:
    def test_lists_queries(self, capsys):
        assert main(["suite"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") == 80
        assert "match-k01" in output

    def test_filters(self, capsys):
        assert main(["suite", "--type", "ranking",
                     "--capability", "reasoning"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") == 10
        assert "ranking-r01" in output


class TestSqlCommand:
    def test_executes(self, capsys):
        assert main(
            ["sql", "formula_1", "SELECT COUNT(*) FROM circuits"]
        ) == 0
        assert "20" in capsys.readouterr().out

    def test_explain(self, capsys):
        assert main(
            ["sql", "formula_1", "SELECT name FROM circuits",
             "--explain"]
        ) == 0
        assert "Scan" in capsys.readouterr().out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "formula_1", "SELECT nope FROM circuits"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            main(["sql", "nope", "SELECT 1"])


class TestQueryCommand:
    def test_runs_one_method(self, capsys):
        assert main(
            ["query", "comparison-k02", "--method", "tag"]
        ) == 0
        output = capsys.readouterr().out
        assert "Hand-written TAG" in output
        assert "gold" in output

    def test_unknown_qid(self, capsys):
        assert main(["query", "nope-99"]) == 1
        assert "no query" in capsys.readouterr().err

    def test_unknown_method(self, capsys):
        assert main(
            ["query", "comparison-k02", "--method", "zzz"]
        ) == 1


class TestExportCommand:
    def test_exports_csvs(self, tmp_path, capsys):
        assert main(
            ["export", "debit_card_specializing", str(tmp_path)]
        ) == 0
        written = capsys.readouterr().out.strip().splitlines()
        assert len(written) == 4
        assert (tmp_path / "customers.csv").exists()


class TestBenchCommand:
    def test_small_bench(self, capsys):
        assert main(["bench", "--max-queries", "2"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output


class TestServe:
    def test_healthy_serve(self, capsys):
        assert (
            main(["serve", "--requests", "4", "--fault-rate", "0"]) == 0
        )
        output = capsys.readouterr().out
        assert "availability" in output
        assert "100.00%" in output
        assert "served 4 requests" in output

    def test_faulty_serve_with_fallback_stays_available(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests", "6",
                    "--fault-rate", "0.4",
                    "--retries", "2",
                ]
            )
            == 0
        )
        assert "100.00%" in capsys.readouterr().out

    def test_unguarded_faulty_serve_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests", "6",
                    "--fault-rate", "0.4",
                    "--retries", "0",
                    "--no-fallback",
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "FAILED" in output


class TestServeAdmission:
    def test_budget_rejects_deep_scans(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests", "8",
                    "--admit-budget", "10",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "admission-rej" in output
        assert "exceeds admission budget 10" in output

    def test_generous_budget_rejects_nothing(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests", "8",
                    "--admit-budget", "100000",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "admission-rej           0" in output


class TestAnalyzeCommand:
    def test_valid_query_ok(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    "SELECT name FROM circuits LIMIT 3",
                    "--db", "formula_1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "analyze: ok" in output
        assert "estimated LM calls" in output

    def test_broken_query_rejected_with_span(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    "SELECT nope FROM circuits",
                    "--db", "formula_1",
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "analyze: rejected" in output
        assert "ANA003" in output
        assert "^^^^" in output

    def test_requires_db(self):
        with pytest.raises(SystemExit):
            main(["analyze", "SELECT 1"])


class TestLintCommand:
    def test_repository_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, capsys, tmp_path, monkeypatch):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "bad.py").write_text(
            "def f(x=[]):\n    return x\n"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        output = capsys.readouterr().out
        assert "DET104" in output

    def test_missing_src_errors(self, capsys, tmp_path):
        assert main(["lint", "--root", str(tmp_path / "nope")]) == 2
        assert "no src/" in capsys.readouterr().err

    def test_per_rule_summary(self, capsys, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "bad.py").write_text(
            "def f(x=[], y={}):\n    try:\n        return x, y\n"
            "    except:\n        return None\n"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        output = capsys.readouterr().out
        assert "per-rule: DET103 x1, DET104 x2" in output

    def test_json_format(self, capsys, tmp_path):
        import json

        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "bad.py").write_text(
            "def f(x=[]):\n    return x\n"
        )
        assert (
            main(["lint", "--root", str(tmp_path), "--format", "json"])
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["counts"] == {"DET104": 1}
        assert document["findings"][0]["code"] == "DET104"
        assert document["findings"][0]["path"] == "src/bad.py"


class TestLintConcCommand:
    def test_repository_is_conc_clean(self, capsys):
        assert main(["lint", "--conc"]) == 0
        output = capsys.readouterr().out
        assert "concurrency: ok" in output
        assert "worker-shared surface" in output

    def test_findings_exit_nonzero(self, capsys, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "racy.py").write_text(
            "class Shared:\n    registry = {}\n"
        )
        assert main(["lint", "--conc", "--root", str(tmp_path)]) == 1
        output = capsys.readouterr().out
        assert "CONC207" in output

    def test_json_format(self, capsys, tmp_path):
        import json

        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "racy.py").write_text(
            "class Shared:\n    registry = {}\n"
        )
        assert (
            main(
                [
                    "lint", "--conc",
                    "--root", str(tmp_path),
                    "--format", "json",
                ]
            )
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert [f["code"] for f in document["findings"]] == ["CONC207"]


class TestTraceCommand:
    def test_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--requests", "4",
                    "--workers", "2",
                    "--out", str(out),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "served 4 requests" in output
        assert "spans" in output
        import json

        document = json.loads(out.read_text())
        assert document["traceEvents"]
        names = {event["name"] for event in document["traceEvents"]}
        assert "request" in names
        assert "lm.call" in names

    def test_jsonl_format(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace",
                    "--requests", "2",
                    "--format", "jsonl",
                    "--out", str(out),
                ]
            )
            == 0
        )
        import json

        records = [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]
        assert records[0]["name"] == "request"

    def test_bytes_identical_across_worker_counts(self, tmp_path):
        outs = []
        for workers in ("1", "3"):
            out = tmp_path / f"w{workers}.json"
            assert (
                main(
                    [
                        "trace",
                        "--requests", "5",
                        "--workers", workers,
                        "--out", str(out),
                    ]
                )
                == 0
            )
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]


class TestServeTrace:
    def test_serve_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve",
                    "--requests", "4",
                    "--trace", str(out),
                ]
            )
            == 0
        )
        assert "trace" in capsys.readouterr().out
        import json

        assert json.loads(out.read_text())["traceEvents"]


class TestSqlExplainAnalyze:
    def test_explain_analyze_prefix(self, capsys):
        assert (
            main(
                [
                    "sql",
                    "formula_1",
                    "EXPLAIN ANALYZE SELECT surname FROM drivers "
                    "ORDER BY surname LIMIT 5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "rows_out=" in output
        assert "vtime=" in output
        assert "Sort" in output
