"""Unit tests for the five evaluated methods."""

import pytest

from repro.lm import LMConfig, SimulatedLM
from repro.methods import (
    HandwrittenTAGMethod,
    RAGMethod,
    RetrievalRerankMethod,
    Text2SQLLMMethod,
    Text2SQLMethod,
    default_methods,
)


def _spec(suite, qid):
    return next(s for s in suite if s.qid == qid)


def _lm():
    return SimulatedLM(LMConfig(seed=0))


class TestDefaultMethods:
    def test_five_methods_with_paper_names(self):
        methods = default_methods(_lm)
        assert [m.name for m in methods] == [
            "Text2SQL",
            "RAG",
            "Retrieval + LM Rank",
            "Text2SQL + LM",
            "Hand-written TAG",
        ]

    def test_each_method_gets_its_own_lm(self):
        methods = default_methods(_lm)
        lms = {id(m.lm) for m in methods}
        assert len(lms) == 5


class TestMethodResults:
    def test_result_has_et_and_diagnostics(self, suite, datasets):
        method = Text2SQLMethod(_lm())
        spec = _spec(suite, "comparison-k02")
        result = method.answer(spec, datasets[spec.domain])
        assert result.et_seconds > 0
        assert result.diagnostics["lm_calls"] >= 1

    def test_errors_captured_as_strings(self, suite, datasets):
        method = Text2SQLMethod(_lm())

        spec = _spec(suite, "comparison-k02")
        result = method.answer(spec, None)  # no dataset -> AttributeError
        assert not result.ok
        assert result.answer is None
        assert "AttributeError" in result.error


class TestText2SQL:
    def test_answers_relational_question(self, suite, datasets):
        method = Text2SQLMethod(_lm())
        spec = _spec(suite, "comparison-k02")  # shorter than Messi
        result = method.answer(spec, datasets[spec.domain])
        assert result.ok
        assert isinstance(result.answer, list)
        assert isinstance(result.answer[0], int)


class TestRAG:
    def test_retrieves_k_rows_and_answers(self, suite, datasets):
        method = RAGMethod(_lm(), k=10)
        spec = _spec(suite, "match-k01")
        dataset = datasets[spec.domain]
        method.prepare(dataset)
        result = method.answer(spec, dataset)
        assert result.ok
        assert isinstance(result.answer, str)

    def test_index_cached_per_domain(self, datasets):
        method = RAGMethod(_lm())
        dataset = datasets["formula_1"]
        first = method.executor(dataset)
        second = method.executor(dataset)
        assert first is second

    def test_prepare_not_counted_in_et(self, suite, datasets):
        method = RAGMethod(_lm())
        dataset = datasets["california_schools"]
        method.prepare(dataset)
        spec = _spec(suite, "match-k01")
        result = method.answer(spec, dataset)
        # ET is LM time + fixed search cost, far below wall-clock of
        # embedding hundreds of rows.
        assert result.et_seconds < 30


class TestRerank:
    def test_reranks_then_answers(self, suite, datasets):
        method = RetrievalRerankMethod(_lm(), k=5, candidates=15)
        spec = _spec(suite, "match-k01")
        dataset = datasets[spec.domain]
        result = method.answer(spec, dataset)
        assert result.ok
        # Reranking adds one LM call per candidate.
        assert result.diagnostics["lm_calls"] >= 15

    def test_slower_than_rag(self, suite, datasets):
        spec = _spec(suite, "match-k02")
        dataset = datasets[spec.domain]
        rag = RAGMethod(_lm()).answer(spec, dataset)
        rerank = RetrievalRerankMethod(_lm()).answer(spec, dataset)
        assert rerank.et_seconds > rag.et_seconds


class TestText2SQLLM:
    def test_context_overflow_falls_back_to_parametric(
        self, suite, datasets
    ):
        method = Text2SQLLMMethod(_lm())
        spec = _spec(suite, "aggregation-k01")  # Sepang, Figure 2
        result = method.answer(spec, datasets[spec.domain])
        assert result.ok
        assert result.diagnostics["context_errors"] >= 1
        assert "general knowledge" in result.answer
        assert "1999" in result.answer and "2017" in result.answer

    def test_answers_from_rows_when_they_fit(self, suite, datasets):
        method = Text2SQLLMMethod(_lm())
        spec = _spec(suite, "comparison-r01")  # 4 comments on one post
        result = method.answer(spec, datasets[spec.domain])
        assert result.ok
        assert result.answer.startswith("[")


class TestHandwrittenTAG:
    def test_runs_pipeline(self, suite, datasets):
        method = HandwrittenTAGMethod(_lm())
        spec = _spec(suite, "comparison-k01")
        result = method.answer(spec, datasets[spec.domain])
        assert result.ok
        assert isinstance(result.answer, list)

    def test_batched_execution(self, suite, datasets):
        method = HandwrittenTAGMethod(_lm(), batch_size=32)
        spec = _spec(suite, "comparison-k02")
        result = method.answer(spec, datasets[spec.domain])
        assert result.diagnostics["lm_batches"] < (
            result.diagnostics["lm_calls"]
        )

    def test_deterministic_across_runs(self, suite, datasets):
        spec = _spec(suite, "ranking-r01")
        first = HandwrittenTAGMethod(_lm()).answer(
            spec, datasets[spec.domain]
        )
        second = HandwrittenTAGMethod(_lm()).answer(
            spec, datasets[spec.domain]
        )
        assert first.answer == second.answer
