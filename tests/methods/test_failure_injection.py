"""Failure injection: methods must degrade gracefully, never crash.

The benchmark counts failures as incorrect answers (invalid SQL,
context overflows, garbage generations); these tests inject each
failure class via a hostile router/handler and assert the methods
surface them as scored results.
"""

import pytest

from repro.bench.runner import run_benchmark
from repro.errors import ContextLengthError, LMError
from repro.lm import LMConfig, SimulatedLM
from repro.lm.prompts import TEXT2SQL_INSTRUCTION
from repro.lm.router import Router
from repro.methods import (
    HandwrittenTAGMethod,
    RAGMethod,
    Text2SQLLMMethod,
    Text2SQLMethod,
)


class _BrokenSQLHandler:
    """Emits syntactically invalid SQL from every synthesis prompt."""

    def matches(self, prompt: str) -> bool:
        return TEXT2SQL_INSTRUCTION in prompt

    def handle(self, prompt: str, context) -> str:
        return "SELEC oops FRM nowhere"


class _HallucinatedColumnHandler:
    """Valid SQL over a column that does not exist."""

    def matches(self, prompt: str) -> bool:
        return TEXT2SQL_INSTRUCTION in prompt

    def handle(self, prompt: str, context) -> str:
        return "SELECT imaginary_column FROM circuits"


class _GarbageHandler:
    """Answers every prompt with unparseable text."""

    def matches(self, prompt: str) -> bool:
        return True

    def handle(self, prompt: str, context) -> str:
        return "I cannot answer that, sorry!"


class _ExplodingHandler:
    def matches(self, prompt: str) -> bool:
        return True

    def handle(self, prompt: str, context) -> str:
        raise LMError("inference backend fell over")


def _lm_with(handler) -> SimulatedLM:
    return SimulatedLM(LMConfig(seed=0), router=Router([handler]))


def _spec(suite, qid):
    return next(s for s in suite if s.qid == qid)


class TestText2SQLFailures:
    def test_invalid_sql_counted_wrong_not_crashed(self, suite, datasets):
        method = Text2SQLMethod(_lm_with(_BrokenSQLHandler()))
        spec = _spec(suite, "comparison-k02")
        result = method.answer(spec, datasets[spec.domain])
        assert not result.ok
        assert "SQLSyntaxError" in result.error

    def test_hallucinated_column_counted_wrong(self, suite, datasets):
        # The static analyzer now rejects hallucinated columns before a
        # plan is ever built; the failure still counts as incorrect.
        method = Text2SQLMethod(_lm_with(_HallucinatedColumnHandler()))
        spec = _spec(suite, "match-k04")
        result = method.answer(spec, datasets[spec.domain])
        assert not result.ok
        assert "AnalysisError" in result.error
        assert "unknown column" in result.error

    def test_benchmark_scores_failures_as_incorrect(
        self, suite, datasets
    ):
        method = Text2SQLMethod(_lm_with(_BrokenSQLHandler()))
        queries = [s for s in suite if s.query_type == "comparison"][:3]
        report = run_benchmark(
            seed=0, methods=[method], queries=queries, datasets=datasets
        )
        assert report.accuracy("Text2SQL") == 0.0
        assert all(record.error for record in report.records)


class TestGenerationFailures:
    def test_garbage_answers_score_zero(self, suite, datasets):
        method = RAGMethod(_lm_with(_GarbageHandler()))
        queries = [s for s in suite if s.query_type == "match"][:3]
        report = run_benchmark(
            seed=0, methods=[method], queries=queries, datasets=datasets
        )
        # Unparseable text is a *wrong answer*, not an error.
        assert all(record.error is None for record in report.records)
        assert report.accuracy("RAG") == 0.0

    def test_backend_explosion_is_captured(self, suite, datasets):
        method = HandwrittenTAGMethod(_lm_with(_ExplodingHandler()))
        spec = _spec(suite, "comparison-k02")
        result = method.answer(spec, datasets[spec.domain])
        assert not result.ok
        assert "LMError" in result.error


class TestContextWindowFailures:
    def test_tiny_window_breaks_text2sql_lm_gracefully(
        self, suite, datasets
    ):
        # A 300-token window: even the synthesis prompt overflows.
        lm = SimulatedLM(LMConfig(seed=0, context_window=300))
        method = Text2SQLLMMethod(lm)
        spec = _spec(suite, "match-k01")
        result = method.answer(spec, datasets[spec.domain])
        assert not result.ok
        assert "ContextLengthError" in result.error

    def test_window_between_syn_and_gen(self, suite, datasets):
        # Large enough to synthesize, too small for the retrieved rows:
        # the method must fall back to a parametric (row-free) answer.
        lm = SimulatedLM(LMConfig(seed=0, context_window=2800))
        method = Text2SQLLMMethod(lm)
        spec = _spec(suite, "aggregation-k01")
        result = method.answer(spec, datasets[spec.domain])
        assert result.ok
        assert result.diagnostics["context_errors"] >= 1

    def test_context_error_raises_from_complete(self):
        lm = SimulatedLM(LMConfig(seed=0, context_window=10))
        with pytest.raises(ContextLengthError):
            lm.complete("word " * 100)
