"""Unit tests for the serving substrate: VirtualClock and LRUCache."""

import pytest

from repro.serve import LRUCache, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now() == 2.0

    def test_custom_start(self):
        assert VirtualClock(start=10.0).now() == 10.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert "k" in cache

    def test_miss_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes recency
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    # -- peek/promote contract --------------------------------------------

    def test_peek_returns_without_promoting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1  # a stays LRU
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache

    def test_peek_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.peek("missing") is None
        assert cache.peek("missing", 7) == 7

    def test_contains_is_a_peek(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership must not refresh recency
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache

    def test_get_promotes_eviction_order(self):
        """Pin the full eviction order: only get/put touch recency."""
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # order now b, c, a (LRU first)
        cache.peek("b")  # no-op for recency
        assert "b" in cache  # no-op for recency
        cache.put("d", 4)  # evicts b
        cache.put("e", 5)  # evicts c
        assert "b" not in cache
        assert "c" not in cache
        assert "a" in cache
        assert "d" in cache
        assert "e" in cache
