"""Tests for TagServer: ordering, equivalence, survival, determinism."""

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.serve import TagServer

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


@pytest.fixture(scope="module")
def movie_dataset():
    return movies.build()


def romance_factory(dataset):
    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(ROMANCE_SQL),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    return factory


def requests(count: int) -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(count)
    ]


class TestTagServer:
    def test_serves_all_requests_in_order(self, movie_dataset):
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=8,
        )
        report = server.serve(requests(10))
        assert [r.index for r in report.results] == list(range(10))
        assert all(r.ok for r in report.results)
        assert report.errors == []
        assert all(r.result.answer for r in report.results)

    def test_matches_unserved_pipeline_answers(self, movie_dataset):
        """Concurrent serving returns exactly the sequential answers."""
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=3,
            window=4,
        )
        served = server.serve(requests(6)).answers()
        reference_lm = SimulatedLM(LMConfig(seed=0))
        pipeline = romance_factory(movie_dataset)(reference_lm)
        sequential = [
            pipeline.run(request).answer for request in requests(6)
        ]
        assert served == sequential

    def test_deterministic_across_runs(self, movie_dataset):
        def run():
            server = TagServer(
                romance_factory(movie_dataset),
                SimulatedLM(LMConfig(seed=0)),
                workers=4,
                window=4,
            )
            return server.serve(requests(9))

        first, second = run(), run()
        assert first.answers() == second.answers()
        assert first.simulated_seconds == second.simulated_seconds
        assert (
            first.usage.simulated_seconds
            == second.usage.simulated_seconds
        )
        assert [r.et_seconds for r in first.results] == [
            r.et_seconds for r in second.results
        ]

    def test_usage_additive_with_per_request_diagnostics(
        self, movie_dataset
    ):
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=8,
        )
        report = server.serve(requests(8))
        assert (
            sum(r.lm_calls for r in report.results)
            == report.usage.calls
        )
        assert sum(
            r.et_seconds for r in report.results
        ) == pytest.approx(report.usage.simulated_seconds)
        # Makespan equals accelerator-serialized batch time.
        assert report.simulated_seconds == pytest.approx(
            report.usage.simulated_seconds
        )

    def test_batching_beats_single_worker(self, movie_dataset):
        def run(workers, window):
            server = TagServer(
                romance_factory(movie_dataset),
                SimulatedLM(LMConfig(seed=0)),
                workers=workers,
                window=window,
            )
            return server.serve(requests(12))

        solo = run(workers=1, window=1)
        batched = run(workers=12, window=12)
        assert batched.answers() == solo.answers()
        assert batched.simulated_seconds < solo.simulated_seconds
        assert batched.throughput_rps > solo.throughput_rps

    def test_cache_serves_repeated_requests(self, movie_dataset):
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=8,
            cache_size=64,
        )
        same = ["Summarize the reviews of the top romance movie"] * 8
        report = server.serve(same)
        assert report.usage.cache_hits == 7
        assert report.usage.cache_misses == 1
        assert report.usage.calls == 1
        assert len(set(report.answers())) == 1

    def test_more_workers_than_requests(self, movie_dataset):
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=16,
            window=8,
        )
        report = server.serve(requests(3))
        assert len(report.results) == 3
        assert all(r.ok for r in report.results)

    def test_empty_request_list(self, movie_dataset):
        server = TagServer(
            romance_factory(movie_dataset), SimulatedLM(LMConfig(seed=0))
        )
        report = server.serve([])
        assert report.results == []
        assert report.throughput_rps == 0.0

    def test_workers_validated(self, movie_dataset):
        with pytest.raises(ValueError):
            TagServer(romance_factory(movie_dataset), workers=0)

    def test_window_validated(self, movie_dataset):
        with pytest.raises(ValueError):
            TagServer(romance_factory(movie_dataset), window=0)


class _ExplodingGenerator:
    """A buggy user-supplied generation step (not a ReproError)."""

    def generate(self, request, table):
        raise ValueError("buggy custom step")


class TestWorkerSurvival:
    def test_buggy_step_fails_request_not_run(self, movie_dataset):
        def factory(lm) -> TAGPipeline:
            return TAGPipeline(
                FixedQuerySynthesizer(ROMANCE_SQL),
                SQLExecutor(movie_dataset.db),
                _ExplodingGenerator(),
            )

        server = TagServer(
            factory, SimulatedLM(LMConfig(seed=0)), workers=4
        )
        report = server.serve(requests(6))
        assert len(report.results) == 6
        assert all(not r.ok for r in report.results)
        assert all(
            r.result.error.kind == "ValueError"
            and r.result.error.step_name == "generation"
            for r in report.results
        )

    def test_mixed_failures_isolated(self, movie_dataset):
        """One worker's broken pipeline never blocks the others."""
        calls = iter(range(100))

        def factory(lm) -> TAGPipeline:
            if next(calls) == 0:  # first worker gets the broken one
                return TAGPipeline(
                    FixedQuerySynthesizer(ROMANCE_SQL),
                    SQLExecutor(movie_dataset.db),
                    _ExplodingGenerator(),
                )
            return romance_factory(movie_dataset)(lm)

        server = TagServer(
            factory, SimulatedLM(LMConfig(seed=0)), workers=3
        )
        report = server.serve(requests(9))
        failed = [r for r in report.results if not r.ok]
        succeeded = [r for r in report.results if r.ok]
        assert {r.worker for r in failed} == {0}
        assert len(succeeded) == 6
        assert all(r.result.answer for r in succeeded)

    def test_crashing_factory_fails_its_requests_only(
        self, movie_dataset
    ):
        workers_built = iter(range(100))

        def factory(lm) -> TAGPipeline:
            if next(workers_built) == 0:
                raise RuntimeError("factory exploded")
            return romance_factory(movie_dataset)(lm)

        server = TagServer(
            factory, SimulatedLM(LMConfig(seed=0)), workers=3
        )
        report = server.serve(requests(6))
        failed = [r for r in report.results if not r.ok]
        assert {r.worker for r in failed} == {0}
        assert all(
            r.result.error.kind == "RuntimeError"
            and r.result.error.step is None
            for r in failed
        )
        assert len([r for r in report.results if r.ok]) == 4


class _Fatal(BaseException):
    """Harsher than Exception: simulates a dying worker, not a bad step."""


class TestFatalWorkerSurfacing:
    def test_fatal_exception_reraises_instead_of_hanging(
        self, movie_dataset
    ):
        """A worker dying on a BaseException must surface from serve(),
        not hang the barrier or silently short-count results."""

        class DyingGenerator:
            def generate(self, request, table):
                raise _Fatal("worker killed")

        def factory(lm) -> TAGPipeline:
            return TAGPipeline(
                FixedQuerySynthesizer(ROMANCE_SQL),
                SQLExecutor(movie_dataset.db),
                DyingGenerator(),
            )

        server = TagServer(
            factory, SimulatedLM(LMConfig(seed=0)), workers=3, window=2
        )
        with pytest.raises(_Fatal):
            server.serve(requests(6))


class TestServeReportAccounting:
    def _report(self, et_seconds, ok_flags=None, degraded_flags=None):
        from repro.core import TAGError
        from repro.core.tag import TAGResult
        from repro.lm.usage import Usage
        from repro.serve import ServeReport, ServeResult

        count = len(et_seconds)
        ok_flags = ok_flags or [True] * count
        degraded_flags = degraded_flags or [False] * count
        results = []
        for index, (seconds, ok, degraded) in enumerate(
            zip(et_seconds, ok_flags, degraded_flags)
        ):
            result = TAGResult(
                request=f"q{index}",
                answer="a" if ok else None,
                error=None if ok else TAGError("X", "boom"),
                degraded=degraded,
            )
            results.append(
                ServeResult(
                    index=index,
                    request=f"q{index}",
                    result=result,
                    et_seconds=seconds,
                    worker=0,
                    lm_calls=1,
                    cache_hits=0,
                )
            )
        return ServeReport(
            results=results,
            simulated_seconds=sum(et_seconds),
            usage=Usage(),
            workers=1,
            window=1,
        )

    def test_availability_and_goodput(self):
        report = self._report(
            [1.0, 1.0, 1.0, 1.0],
            ok_flags=[True, True, False, True],
            degraded_flags=[False, True, False, False],
        )
        assert report.availability == 0.75
        assert report.degraded_count == 1
        assert report.goodput_rps == pytest.approx(3 / 4.0)
        assert report.throughput_rps == pytest.approx(4 / 4.0)

    def test_empty_report_is_fully_available(self):
        report = self._report([])
        assert report.availability == 1.0
        assert report.degraded_count == 0
        assert report.latency_percentile(0.95) == 0.0

    def test_latency_percentiles_nearest_rank(self):
        report = self._report([float(v) for v in range(1, 21)])
        assert report.latency_percentile(0.50) == 10.0
        assert report.latency_percentile(0.95) == 19.0
        assert report.latency_percentile(1.00) == 20.0
        with pytest.raises(ValueError):
            report.latency_percentile(0.0)
        with pytest.raises(ValueError):
            report.latency_percentile(1.5)
