"""Tests for repro.lm.faults: plans, injection, and schedule determinism."""

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.errors import (
    LMTimeoutError,
    MalformedOutputError,
    RateLimitError,
    TransientLMError,
)
from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.serve import ResiliencePolicy, RetryPolicy, TagServer

from repro.lm.prompts import summary_prompt

PROMPT = summary_prompt("Summarize the notes", ["hello", "world"])

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


@pytest.fixture(scope="module")
def movie_dataset():
    return movies.build()


def requests(count: int) -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(count)
    ]


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate_limit_rate=0.6, timeout_rate=0.6)
        with pytest.raises(ValueError):
            FaultPlan(script=("explode",))
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_factor=0.5)

    def test_uniform_splits_rate(self):
        plan = FaultPlan.uniform(0.2, seed=7)
        assert plan.rate_limit_rate == pytest.approx(0.05)
        assert plan.malformed_rate == pytest.approx(0.05)
        assert plan.seed == 7
        assert not plan.is_healthy

    def test_healthy_plan(self):
        assert FaultPlan().is_healthy
        assert not FaultPlan(script=(None,)).is_healthy

    def test_draw_is_pure(self):
        plan = FaultPlan.uniform(0.5, seed=3)
        draws = [plan.draw(f"p{i}", None, 0) for i in range(64)]
        again = [plan.draw(f"p{i}", None, 0) for i in range(64)]
        assert draws == again
        assert any(kind is not None for kind in draws)
        assert any(kind is None for kind in draws)

    def test_draw_varies_with_seed_and_attempt(self):
        base = FaultPlan.uniform(0.5, seed=0)
        reseeded = FaultPlan.uniform(0.5, seed=1)
        prompts = [f"p{i}" for i in range(64)]
        assert [base.draw(p, None, 0) for p in prompts] != [
            reseeded.draw(p, None, 0) for p in prompts
        ]
        assert [base.draw(p, None, 0) for p in prompts] != [
            base.draw(p, None, 1) for p in prompts
        ]


class TestFaultyLM:
    def test_healthy_plan_is_passthrough(self):
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), FaultPlan())
        reference = SimulatedLM(LMConfig(seed=0))
        assert (
            faulty.complete(PROMPT).text == reference.complete(PROMPT).text
        )
        assert faulty.usage == reference.usage
        assert faulty.usage.faults_injected == 0

    def test_scripted_faults_fire_in_order(self):
        plan = FaultPlan(
            script=("rate_limit", "timeout", "transient", None),
            timeout_s=30.0,
        )
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        with pytest.raises(RateLimitError):
            faulty.complete(PROMPT)
        with pytest.raises(LMTimeoutError) as caught:
            faulty.complete(PROMPT)
        assert caught.value.latency_s == 30.0
        with pytest.raises(TransientLMError):
            faulty.complete(PROMPT)
        response = faulty.complete(PROMPT)
        assert response.text
        assert faulty.usage.faults_injected == 3

    def test_fault_latency_billed_to_usage(self):
        plan = FaultPlan(script=("timeout",), timeout_s=12.0)
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        with pytest.raises(LMTimeoutError):
            faulty.complete(PROMPT)
        assert faulty.usage.simulated_seconds == pytest.approx(12.0)
        assert faulty.usage.calls == 0  # the model never ran

    def test_malformed_ran_the_model(self):
        plan = FaultPlan(script=("malformed",))
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        with pytest.raises(MalformedOutputError) as caught:
            faulty.complete(PROMPT)
        # The compute ran: the call is billed and the error carries a
        # full call's latency plus the garbled payload.
        assert faulty.usage.calls == 1
        assert caught.value.latency_s > 0.0
        assert caught.value.text.endswith("\N{REPLACEMENT CHARACTER}")

    def test_latency_spike_inflates_response(self):
        plan = FaultPlan(
            script=("latency_spike",), latency_spike_factor=10.0
        )
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        reference = SimulatedLM(LMConfig(seed=0))
        spiked = faulty.complete(PROMPT)
        normal = reference.complete(PROMPT)
        assert spiked.text == normal.text
        assert spiked.latency_s == pytest.approx(normal.latency_s * 10.0)
        assert faulty.usage.faults_injected == 1
        # The inflated latency is billed, keeping usage consistent
        # with the sum of response latencies.
        assert faulty.usage.simulated_seconds == pytest.approx(
            spiked.latency_s
        )

    def test_batch_peek_rejects_without_consuming(self):
        plan = FaultPlan(script=("transient", None, None))
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        prompts = [PROMPT, PROMPT + " again"]
        with pytest.raises(TransientLMError):
            faulty.complete_batch(prompts)
        # Nothing consumed or billed by the rejected batch...
        assert faulty.usage.faults_injected == 0
        assert faulty.usage.calls == 0
        # ...so the per-prompt replay sees the script from the start.
        with pytest.raises(TransientLMError):
            faulty.complete(prompts[0])
        assert faulty.complete(prompts[1]).text
        assert faulty.usage.faults_injected == 1

    def test_clean_batch_passes_through(self):
        plan = FaultPlan(script=(None, None), transient_rate=0.0)
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        reference = SimulatedLM(LMConfig(seed=0))
        prompts = [PROMPT, PROMPT + " again"]
        assert [r.text for r in faulty.complete_batch(prompts)] == [
            r.text for r in reference.complete_batch(prompts)
        ]
        assert faulty.usage == reference.usage

    def test_retry_of_same_prompt_draws_fresh(self):
        plan = FaultPlan.uniform(0.6, seed=11)
        faulty = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        outcomes = []
        for _ in range(8):  # one evaluation per attempt index
            try:
                faulty.complete(PROMPT)
                outcomes.append("ok")
            except TransientLMError as error:
                outcomes.append(type(error).__name__)
        # At 60% fault rate the attempt sequence must mix outcomes.
        assert "ok" in outcomes
        assert len(set(outcomes)) > 1
        # And the sequence is exactly reproducible from a fresh wrapper.
        replay = FaultyLM(SimulatedLM(LMConfig(seed=0)), plan)
        replayed = []
        for _ in range(8):
            try:
                replay.complete(PROMPT)
                replayed.append("ok")
            except TransientLMError as error:
                replayed.append(type(error).__name__)
        assert replayed == outcomes


def _resilient_server(workers: int, plan: FaultPlan, dataset, window=1):
    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(ROMANCE_SQL),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    return TagServer(
        factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=window,
        fault_plan=plan,
        resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=4)),
    )


class TestServingDeterminismUnderFaults:
    """Satellite: same FaultPlan seed => identical fault schedule and
    identical ServeReport across runs and across worker counts."""

    def test_identical_reports_across_runs(self, movie_dataset):
        plan = FaultPlan.uniform(0.25, seed=5)

        def run():
            server = _resilient_server(4, plan, movie_dataset, window=4)
            return server.serve(requests(12))

        first, second = run(), run()
        assert first.answers() == second.answers()
        assert first.simulated_seconds == second.simulated_seconds
        assert first.usage == second.usage
        assert [r.et_seconds for r in first.results] == [
            r.et_seconds for r in second.results
        ]
        assert [r.ok for r in first.results] == [
            r.ok for r in second.results
        ]
        assert first.usage.retries > 0
        assert first.usage.faults_injected > 0

    def test_identical_schedule_across_worker_counts(self, movie_dataset):
        """Faults are keyed on (seed, prompt, attempt), not call order,
        so the schedule survives re-sharding across workers.  At
        window=1 a single-request batch costs exactly an unbatched
        call, so even simulated seconds agree."""
        plan = FaultPlan.uniform(0.25, seed=5)
        reports = {
            workers: _resilient_server(
                workers, plan, movie_dataset, window=1
            ).serve(requests(12))
            for workers in (1, 3, 12)
        }
        reference = reports[1]
        for report in reports.values():
            assert report.answers() == reference.answers()
            assert report.usage.faults_injected == (
                reference.usage.faults_injected
            )
            assert report.usage.retries == reference.usage.retries
            assert report.simulated_seconds == pytest.approx(
                reference.simulated_seconds
            )

    def test_zero_rate_plan_is_bit_identical_to_no_plan(
        self, movie_dataset
    ):
        """Acceptance: the resilience stack is a zero-cost no-op when
        healthy — with fault rate 0 the server reproduces the plain
        deployment's answers, seconds, and usage exactly."""

        def factory_for(dataset):
            def factory(lm) -> TAGPipeline:
                return TAGPipeline(
                    FixedQuerySynthesizer(ROMANCE_SQL),
                    SQLExecutor(dataset.db),
                    SingleCallGenerator(lm, aggregation=True),
                )

            return factory

        plain = TagServer(
            factory_for(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=8,
        ).serve(requests(10))
        guarded = TagServer(
            factory_for(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=8,
            fault_plan=FaultPlan.uniform(0.0, seed=9),
            resilience=ResiliencePolicy(),
        ).serve(requests(10))
        assert guarded.answers() == plain.answers()
        assert guarded.simulated_seconds == plain.simulated_seconds
        assert guarded.usage == plain.usage
        assert [r.et_seconds for r in guarded.results] == [
            r.et_seconds for r in plain.results
        ]

    def test_faulty_run_degrades_gracefully_with_fallback(
        self, movie_dataset
    ):
        from repro.core import FallbackPipeline

        def factory(lm):
            primary = TAGPipeline(
                FixedQuerySynthesizer(ROMANCE_SQL),
                SQLExecutor(movie_dataset.db),
                SingleCallGenerator(lm, aggregation=True),
            )
            fallback = TAGPipeline(
                FixedQuerySynthesizer(ROMANCE_SQL),
                SQLExecutor(movie_dataset.db),
                NoGenerator(),  # no LM: raw rows instead of a summary
            )
            return FallbackPipeline(
                [("tag", primary), ("text2sql", fallback)]
            )

        # A brutal plan: everything faults, retries can't save it.
        plan = FaultPlan.uniform(1.0, seed=2)
        server = TagServer(
            factory,
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=4,
            fault_plan=plan,
            resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=2)),
        )
        report = server.serve(requests(8))
        # Every request is answered (degraded), none errored.
        assert report.availability == 1.0
        assert report.degraded_count == len(report.results)
        for result in report.results:
            assert result.result.method == "text2sql"
            assert result.result.fallbacks[0].method == "tag"
            assert result.result.fallbacks[0].error.kind in {
                "RateLimitError",
                "LMTimeoutError",
                "TransientLMError",
                "MalformedOutputError",
            }
