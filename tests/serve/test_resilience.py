"""Tests for repro.serve.resilience: retries, deadlines, breaker."""

import pytest

from repro.errors import (
    CircuitOpenError,
    ContextLengthError,
    DeadlineExceededError,
    TransientLMError,
)
from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.lm.prompts import summary_prompt
from repro.serve import VirtualClock
from repro.serve.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    ResiliencePolicy,
    ResilientLM,
    RetryPolicy,
)

PROMPT = summary_prompt("Summarize the notes", ["hello", "world"])


def faulty(script, **plan_overrides) -> FaultyLM:
    return FaultyLM(
        SimulatedLM(LMConfig(seed=0)),
        FaultPlan(script=script, **plan_overrides),
    )


class TestRetryPolicy:
    def test_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=1.0,
            backoff_multiplier=2.0,
            max_backoff_s=4.0,
            jitter=0.0,
        )
        sleeps = [
            policy.backoff_seconds(PROMPT, attempt)
            for attempt in (1, 2, 3, 4, 5)
        ]
        assert sleeps == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, jitter=0.25, seed=3
        )
        first = policy.backoff_seconds(PROMPT, 1)
        assert first == policy.backoff_seconds(PROMPT, 1)
        assert 0.75 <= first <= 1.25
        # Different prompts and seeds jitter differently.
        assert first != policy.backoff_seconds(PROMPT + "!", 1)
        reseeded = RetryPolicy(base_backoff_s=1.0, jitter=0.25, seed=4)
        assert first != reseeded.backoff_seconds(PROMPT, 1)


class TestResilientLMRetry:
    def test_retries_through_transient_faults(self):
        lm = ResilientLM(
            faulty(("transient", "rate_limit", None)),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=3)),
        )
        response = lm.complete(PROMPT)
        assert response.text
        assert lm.usage.retries == 2
        assert lm.usage.faults_injected == 2
        assert lm.usage.calls == 1

    def test_backoff_costs_simulated_seconds_on_the_clock(self):
        clock = VirtualClock()
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff_s=3.0, jitter=0.0)
        )
        lm = ResilientLM(faulty(("transient", None)), policy, clock=clock)
        lm.complete(PROMPT)
        assert clock.now() == pytest.approx(3.0)

    def test_exhausted_retries_reraise(self):
        lm = ResilientLM(
            faulty(("transient", "transient", "transient")),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=2)),
        )
        with pytest.raises(TransientLMError):
            lm.complete(PROMPT)
        assert lm.usage.retries == 1  # one backoff between two attempts

    def test_no_retry_policy_fails_on_first_fault(self):
        lm = ResilientLM(
            faulty(("transient", None)), ResiliencePolicy.no_retry()
        )
        with pytest.raises(TransientLMError):
            lm.complete(PROMPT)
        assert lm.usage.retries == 0

    def test_non_retryable_errors_pass_through(self):
        lm = ResilientLM(
            FaultyLM(SimulatedLM(LMConfig(seed=0)), FaultPlan()),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=4)),
        )
        huge = summary_prompt("Summarize", ["x" * 40000])
        with pytest.raises(ContextLengthError):
            lm.complete(huge)
        assert lm.usage.retries == 0

    def test_healthy_path_is_a_strict_noop(self):
        clock = VirtualClock()
        guarded = ResilientLM(
            FaultyLM(SimulatedLM(LMConfig(seed=0)), FaultPlan()),
            ResiliencePolicy(
                deadline_s=60.0, breaker=BreakerPolicy()
            ),
            clock=clock,
        )
        reference = SimulatedLM(LMConfig(seed=0))
        for _ in range(3):
            assert (
                guarded.complete(PROMPT).text
                == reference.complete(PROMPT).text
            )
        assert guarded.usage == reference.usage
        assert clock.now() == 0.0  # no backoff ever billed

    def test_batch_fallback_retries_per_prompt(self):
        lm = ResilientLM(
            faulty(("transient", None, None, None)),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=3)),
        )
        prompts = [PROMPT, PROMPT + " again"]
        responses = lm.complete_batch(prompts)
        assert [bool(r.text) for r in responses] == [True, True]
        assert lm.usage.retries == 1


class TestDeadlines:
    def test_deadline_kills_slow_request(self):
        # Each timeout burns 30 simulated seconds; a 40-second budget
        # survives one timeout but dies before paying a second one.
        lm = ResilientLM(
            faulty(
                ("timeout", "timeout", None), timeout_s=30.0
            ),
            ResiliencePolicy(
                retry=RetryPolicy(
                    max_attempts=5, base_backoff_s=1.0, jitter=0.0
                ),
                deadline_s=40.0,
            ),
        )
        with pytest.raises(DeadlineExceededError) as caught:
            lm.complete(PROMPT)
        assert lm.usage.deadline_exceeded == 1
        assert caught.value.deadline_s == 40.0
        assert caught.value.elapsed_s >= 30.0
        # The deadline kill names its cause.
        assert isinstance(caught.value.__cause__, TransientLMError)

    def test_generous_deadline_lets_retries_finish(self):
        lm = ResilientLM(
            faulty(("timeout", None), timeout_s=30.0),
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, jitter=0.0),
                deadline_s=300.0,
            ),
        )
        assert lm.complete(PROMPT).text
        assert lm.usage.deadline_exceeded == 0


class TestCircuitBreakerStateMachine:
    """Satellite: closed -> open -> half-open -> closed, driven purely
    by the virtual clock."""

    def test_full_cycle(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=3, reset_timeout_s=60.0),
            clock,
        )
        assert breaker.state == CircuitBreaker.CLOSED
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure trips it
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.cooldown_remaining() == pytest.approx(60.0)

        clock.advance(59.0)
        assert not breaker.allow()  # still cooling down
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe may proceed

        # Probe fails: re-open with a fresh cooldown.
        assert breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.cooldown_remaining() == pytest.approx(60.0)

        clock.advance(60.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()  # probe succeeds: closed again
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_consecutive_count(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, reset_timeout_s=10.0),
            clock,
        )
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # never 2 in a row

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_s=0.0)


class TestBreakerInResilientLM:
    def test_open_breaker_fails_fast_with_zero_lm_latency(self):
        """Satellite: an open breaker rejects instantly — no calls, no
        tokens, no simulated seconds."""
        lm = ResilientLM(
            faulty(("transient",) * 8),
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerPolicy(
                    failure_threshold=2, reset_timeout_s=1000.0
                ),
            ),
        )
        for _ in range(2):
            with pytest.raises(TransientLMError):
                lm.complete(PROMPT)
        assert lm.usage.breaker_trips == 1
        before = lm.usage.snapshot()
        for _ in range(5):
            with pytest.raises(CircuitOpenError):
                lm.complete(PROMPT)
        after = lm.usage.since(before)
        assert after.calls == 0
        assert after.faults_injected == 0
        assert after.simulated_seconds == 0.0

    def test_breaker_recovers_via_probe(self):
        timeline = VirtualClock()
        lm = ResilientLM(
            faulty(("transient", "transient", None, None)),
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerPolicy(
                    failure_threshold=2, reset_timeout_s=4.0
                ),
            ),
            timeline=timeline,
        )
        for _ in range(2):
            with pytest.raises(TransientLMError):
                lm.complete(PROMPT)
        assert lm.breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            lm.complete(PROMPT)
        timeline.advance(4.0)  # cooldown elapses in simulated time
        assert lm.breaker.state == CircuitBreaker.HALF_OPEN
        assert lm.complete(PROMPT).text  # the probe succeeds
        assert lm.breaker.state == CircuitBreaker.CLOSED
