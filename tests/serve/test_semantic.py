"""Unit and property tests for the semantic serving control plane."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tag import TAGError, TAGResult
from repro.lm.prompts import text2sql_prompt
from repro.lm.usage import Usage
from repro.obs.metrics import MetricsRegistry
from repro.serve.semantic import (
    QueryRegistry,
    SemanticResultCache,
    canonicalize,
)


def _ok_result(request: str, answer: object) -> TAGResult:
    return TAGResult(request=request, query="SELECT 1", answer=answer)


# ---------------------------------------------------------------------------
# canonicalizer
# ---------------------------------------------------------------------------


class TestCanonicalizer:
    def test_case_and_whitespace_invariance(self):
        a = canonicalize("What are   the TOP 5 Romance movies?")
        b = canonicalize("what are the top 5 romance movies")
        assert a.text == b.text

    def test_number_normalization(self):
        assert (
            canonicalize("top 05 movies").text
            == canonicalize("top 5 movies").text
        )
        assert (
            canonicalize("rated 3.50 stars").text
            == canonicalize("rated 3.5 stars").text
        )

    def test_conjunction_pairs_order_insensitive(self):
        a = canonicalize("comedy and romance movies")
        b = canonicalize("romance and comedy movies")
        assert a.text == b.text

    def test_word_order_otherwise_preserved(self):
        assert (
            canonicalize("dogs bite men").text
            != canonicalize("men bite dogs").text
        )

    def test_plural_and_possessive_folding(self):
        assert (
            canonicalize("the actors' ages").text
            == canonicalize("actor age").text
        )
        assert (
            canonicalize("cities in Texas").text
            == canonicalize("city in texas").text
        )
        assert (
            canonicalize("top movies").text
            == canonicalize("top movie").text
        )

    def test_degenerate_forms(self):
        for text in ["", "   ", "?!...", "the and of a"]:
            assert canonicalize(text).degenerate, repr(text)
        assert not canonicalize("movies").degenerate

    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_idempotent_on_any_text(self, text):
        once = canonicalize(text)
        twice = canonicalize(once.text)
        assert twice.text == once.text

    # ASCII only: Unicode one-to-many casings ("ß".upper() == "SS")
    # legitimately change the token stream, so upper-case invariance is
    # only promised where upper/lower round-trips.
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_case_whitespace_invariant_property(self, text):
        assert (
            canonicalize(text).text
            == canonicalize("  " + text.upper() + "  ").text
        )

    def test_distinct_questions_never_collapse(self):
        questions = [
            "What is the average revenue of comedy movies?",
            "What is the average revenue of romance movies?",
            "Which director made the most movies?",
            "How many movies were released in 1995?",
            "How many movies were released in 1996?",
            "List the reviews of the longest movie",
            "List the reviews of the shortest movie",
        ]
        forms = [canonicalize(q).text for q in questions]
        assert len(set(forms)) == len(forms)


# ---------------------------------------------------------------------------
# semantic result cache
# ---------------------------------------------------------------------------


class TestSemanticResultCache:
    def test_exact_hit_after_store(self):
        cache = SemanticResultCache(capacity=8)
        cache.store("Top romance movies", _ok_result("q", [1]))
        hit = cache.lookup("top romance movie's!")
        assert hit is not None
        assert hit.via == "exact"
        assert hit.similarity == 1.0
        assert hit.result.answer == [1]

    def test_hit_result_is_a_detached_copy(self):
        cache = SemanticResultCache(capacity=8)
        stored = _ok_result("q", ["a", "b"])
        cache.store("Top romance movies", stored)
        stored.answer.append("mutated-after-store")
        first = cache.lookup("top romance movies")
        first.result.answer.append("mutated-after-lookup")
        second = cache.lookup("top romance movies")
        assert second.result.answer == ["a", "b"]
        assert second.result.request == "top romance movies"

    def test_near_hit_above_threshold(self):
        cache = SemanticResultCache(capacity=8, threshold=0.6)
        cache.store(
            "Summarize the reviews of the top romance movie",
            _ok_result("q", ["fine"]),
        )
        hit = cache.lookup(
            "Summarize all the reviews of the top romance movie please"
        )
        assert hit is not None
        assert hit.via == "near"
        assert 0.6 <= hit.similarity < 1.0
        assert hit.result.answer == ["fine"]

    def test_below_threshold_misses(self):
        cache = SemanticResultCache(capacity=8, threshold=0.95)
        cache.store("Top romance movies", _ok_result("q", [1]))
        assert cache.lookup("Average voter age in Texas") is None

    def test_catalog_version_partitions_entries(self):
        cache = SemanticResultCache(capacity=8)
        cache.store("Top movies", _ok_result("q", [1]), catalog_version="v1")
        assert cache.lookup("Top movies", catalog_version="v2") is None
        assert (
            cache.lookup("Top movies", catalog_version="v1") is not None
        )

    def test_config_fingerprint_partitions_entries(self):
        a = SemanticResultCache(capacity=8, config_fingerprint="pipe-a")
        b = SemanticResultCache(capacity=8, config_fingerprint="pipe-b")
        a.store("Top movies", _ok_result("q", [1]))
        b.store("Top movies", _ok_result("q", [2]))
        assert a.lookup("Top movies").result.answer == [1]
        assert b.lookup("Top movies").result.answer == [2]

    def test_invalidate_evicts_exactly_affected_version(self):
        cache = SemanticResultCache(capacity=8)
        cache.store("alpha question", _ok_result("q", 1), catalog_version="v1")
        cache.store("beta question", _ok_result("q", 2), catalog_version="v1")
        cache.store("gamma question", _ok_result("q", 3), catalog_version="v2")
        assert cache.invalidate(catalog_version="v1") == 2
        assert cache.lookup("alpha question", catalog_version="v1") is None
        assert cache.lookup("beta question", catalog_version="v1") is None
        surviving = cache.lookup("gamma question", catalog_version="v2")
        assert surviving is not None
        assert surviving.result.answer == 3

    def test_invalidate_all(self):
        cache = SemanticResultCache(capacity=8)
        cache.store("alpha question", _ok_result("q", 1))
        cache.store("beta question", _ok_result("q", 2))
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.lookup("alpha question") is None

    def test_invalidated_entries_never_near_match(self):
        cache = SemanticResultCache(capacity=8, threshold=0.5)
        cache.store("Top romance movies by revenue", _ok_result("q", 1))
        cache.invalidate()
        assert cache.lookup("Top romance movies by revenue!") is None

    def test_eviction_tombstones_index_rows(self):
        cache = SemanticResultCache(capacity=2, threshold=0.5)
        cache.store("alpha bravo charlie", _ok_result("q", 1))
        cache.store("delta echo foxtrot", _ok_result("q", 2))
        cache.store("golf hotel india", _ok_result("q", 3))  # evicts alpha
        assert len(cache) == 2
        assert cache.stats()["tombstones"] == 1
        assert cache.lookup("alpha bravo charlie") is None
        assert cache.lookup("golf hotel india") is not None

    def test_degenerate_requests_are_uncacheable(self):
        cache = SemanticResultCache(capacity=8)
        assert not cache.store("?!...", _ok_result("q", 1))
        assert cache.lookup("?!...") is None
        # Two distinct degenerate requests must never serve each other.
        cache.store("", _ok_result("q", "zero"))
        assert cache.lookup("the and of") is None

    def test_errored_and_degraded_results_not_stored(self):
        cache = SemanticResultCache(capacity=8)
        errored = TAGResult(
            request="q", error=TAGError(kind="boom", message="x")
        )
        assert not cache.store("some question", errored)
        degraded = _ok_result("q", 1)
        degraded.degraded = True
        assert not cache.store("some question", degraded)
        assert len(cache) == 0

    def test_first_store_wins_for_a_key(self):
        cache = SemanticResultCache(capacity=8)
        assert cache.store("Top movies", _ok_result("q", "first"))
        assert not cache.store("top movie", _ok_result("q", "second"))
        assert cache.lookup("Top movies").result.answer == "first"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SemanticResultCache(threshold=0.0)
        with pytest.raises(ValueError):
            SemanticResultCache(threshold=1.5)


class TestSemanticCacheMetering:
    def _cache(self, capacity=8, **kwargs):
        usage = Usage()
        metrics = MetricsRegistry()
        cache = SemanticResultCache(
            capacity=capacity, usage=usage, metrics=metrics, **kwargs
        )
        return cache, usage, metrics

    def test_hit_miss_near_counters(self):
        cache, usage, metrics = self._cache(threshold=0.6)
        assert cache.lookup("Top romance movies") is None
        cache.store("Top romance movies", _ok_result("q", 1))
        cache.lookup("top romance movie")
        cache.lookup("Top of the romance movies chart")
        assert usage.semcache_misses == 1
        assert usage.semcache_hits == 1
        assert usage.semcache_near_hits == 1
        assert (
            metrics.counter("repro_semcache_misses_total").value == 1
        )
        assert metrics.counter("repro_semcache_hits_total").value == 1
        assert (
            metrics.counter("repro_semcache_near_hits_total").value == 1
        )

    def test_invalidation_counter(self):
        cache, usage, metrics = self._cache()
        cache.store("alpha question", _ok_result("q", 1))
        cache.store("beta question", _ok_result("q", 2))
        cache.invalidate()
        assert usage.semcache_invalidations == 2
        assert (
            metrics.counter("repro_semcache_invalidations_total").value
            == 2
        )

    def test_disabled_cache_meters_exactly_one_miss_per_lookup(self):
        """The capacity==0 audit: one miss at lookup, nothing at store.

        Pre-audit the risk was double-metering each disabled round trip
        (a miss at get plus a drop at put); the counter pins the seam.
        """
        cache, usage, metrics = self._cache(capacity=0)
        assert cache.lookup("Top movies") is None
        assert not cache.store("Top movies", _ok_result("q", 1))
        assert cache.lookup("Top movies") is None
        assert usage.semcache_misses == 2
        assert usage.semcache_hits == 0
        assert (
            metrics.counter("repro_semcache_misses_total").value == 2
        )

    def test_coalesced_meters_one_hit(self):
        cache, usage, _ = self._cache()
        cache.meter_coalesced()
        assert usage.semcache_hits == 1
        assert usage.semcache_misses == 0

    def test_unmetered_cache_works(self):
        cache = SemanticResultCache(capacity=4)
        assert cache.lookup("anything at all") is None
        cache.store("anything at all", _ok_result("q", 1))
        assert cache.lookup("anything at all") is not None


class TestKeyFor:
    def test_uncacheable_requests_have_no_key(self):
        cache = SemanticResultCache(capacity=8)
        assert cache.key_for("?!...") is None
        disabled = SemanticResultCache(capacity=0)
        assert disabled.key_for("Top movies") is None

    def test_key_matches_store_lookup_partition(self):
        cache = SemanticResultCache(capacity=8)
        assert cache.key_for("Top movies") == cache.key_for("top movie!")
        assert cache.key_for("Top movies") != cache.key_for(
            "Worst movies"
        )
        assert cache.key_for("Top movies", "v1") != cache.key_for(
            "Top movies", "v2"
        )


# ---------------------------------------------------------------------------
# query registry
# ---------------------------------------------------------------------------


class TestQueryRegistry:
    def test_record_and_rank(self):
        registry = QueryRegistry()
        registry.record(
            "Top comedy movies", "SELECT * FROM movies WHERE genre='c'"
        )
        registry.record("Average voter age", "SELECT AVG(age) FROM v")
        ranked = registry.examples("best comedy movies of all time", 1)
        assert [e.question for e in ranked] == ["Top comedy movies"]

    def test_one_entry_per_canonical_form(self):
        registry = QueryRegistry()
        assert registry.record("Top movies", "SELECT 1")
        assert not registry.record("top movie!", "SELECT 2")
        assert len(registry) == 1
        assert registry.entries()[0].sql == "SELECT 1"

    def test_degenerate_and_empty_sql_rejected(self):
        registry = QueryRegistry()
        assert not registry.record("?!", "SELECT 1")
        assert not registry.record("Top movies", "")
        assert len(registry) == 0

    def test_degenerate_question_gets_no_examples(self):
        registry = QueryRegistry()
        registry.record("Top movies", "SELECT 1")
        assert registry.examples("?!...") == []

    def test_capacity_evicts_oldest(self):
        registry = QueryRegistry(capacity=2)
        registry.record("alpha question", "SELECT 1")
        registry.record("beta question", "SELECT 2")
        registry.record("gamma question", "SELECT 3")
        questions = [e.question for e in registry.entries()]
        assert questions == ["beta question", "gamma question"]
        # The evicted entry never resurfaces through the vector index.
        ranked = registry.examples("alpha question", 3)
        assert all(e.question != "alpha question" for e in ranked)

    def test_examples_k_bounds(self):
        registry = QueryRegistry()
        registry.record("alpha question", "SELECT 1")
        assert registry.examples("alpha question", 0) == []
        assert len(registry.examples("alpha question", 5)) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryRegistry(capacity=0)


class TestFewShotPromptInjection:
    def test_examples_flatten_before_question(self):
        prompt = text2sql_prompt(
            "CREATE TABLE movies (movie_title TEXT);",
            "What are the top movies?",
            examples=[
                ("Top comedy movies", "SELECT *\nFROM movies"),
            ],
        )
        assert "-- Example Question: Top comedy movies" in prompt
        assert "-- Example SQL: SELECT * FROM movies" in prompt
        # The real question stays the last plain comment line, so the
        # prompt router still parses it (not the example lines).
        from repro.lm.handlers.text2sql import _parse_question

        assert _parse_question(prompt) == "What are the top movies?"

    def test_no_examples_is_byte_identical_to_legacy(self):
        schema = "CREATE TABLE t (a TEXT);"
        assert text2sql_prompt(schema, "q?") == text2sql_prompt(
            schema, "q?", examples=None
        )
        assert "Example" not in text2sql_prompt(schema, "q?", examples=[])
