"""TagServer + semantic cache integration: equivalence, invariance,
admission pricing, tracing, race-cleanliness, registry few-shot."""

from __future__ import annotations

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    LMQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.obs import racecheck
from repro.obs.racecheck import RaceChecker
from repro.obs.trace import Tracer
from repro.serve import (
    AdmissionPolicy,
    QueryRegistry,
    SemanticResultCache,
    SQLAdmissionEstimator,
    TagServer,
)

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


@pytest.fixture(scope="module")
def movie_dataset():
    return movies.build()


def romance_factory(dataset):
    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(ROMANCE_SQL),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    return factory


def distinct_requests(count: int) -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(count)
    ]


def _server(dataset, workers=4, cache=None, **kwargs) -> TagServer:
    return TagServer(
        romance_factory(dataset),
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=max(2, workers),
        semantic_cache=cache,
        **kwargs,
    )


def _strip_traces(report):
    return [
        (r.index, r.request, r.result, r.worker, r.semantic)
        for r in report.results
    ]


class TestHitEqualsFreshExecution:
    def test_cached_answers_byte_identical_to_fresh(self, movie_dataset):
        """The acceptance property: every semantic hit returns a
        TAGResult equal to what fresh execution would produce."""
        requests = distinct_requests(6)
        cache = SemanticResultCache(capacity=64)
        warm_server = _server(movie_dataset, cache=cache)
        fresh = warm_server.serve(requests)
        assert all(r.semantic is None for r in fresh.results)
        cached = warm_server.serve(requests)
        assert [r.semantic for r in cached.results] == ["exact"] * 6
        # TAGResult equality covers query, table, answer, error,
        # method, degraded, fallbacks (trace is excluded by design).
        assert [r.result for r in cached.results] == [
            r.result for r in fresh.results
        ]
        cold = _server(movie_dataset).serve(requests)
        assert [r.result for r in cached.results] == [
            r.result for r in cold.results
        ]

    def test_all_hit_run_costs_zero_lm(self, movie_dataset):
        cache = SemanticResultCache(capacity=64)
        server = _server(movie_dataset, cache=cache)
        server.serve(distinct_requests(4))
        report = server.serve(distinct_requests(4))
        assert report.simulated_seconds == 0.0
        assert report.usage.calls == 0
        assert report.usage.prompt_tokens == 0
        assert report.usage.output_tokens == 0
        assert report.usage.semcache_hits == 4
        assert all(r.et_seconds == 0.0 for r in report.results)
        assert all(r.worker == -2 for r in report.results)

    def test_in_run_duplicates_coalesce_onto_leader(self, movie_dataset):
        cache = SemanticResultCache(capacity=64)
        server = _server(movie_dataset, cache=cache)
        requests = [
            "Summarize the reviews of the top romance movie",
            "summarize the review of the top romance movies!",
            "Summarize the reviews of the top romance movie (#1)",
            "Summarize the reviews of the top romance movie",
        ]
        report = server.serve(requests)
        assert [r.semantic for r in report.results] == [
            None,
            "coalesced",
            None,
            "coalesced",
        ]
        leader = report.results[0].result
        assert report.results[1].result.answer == leader.answer
        assert report.results[3].result.answer == leader.answer
        # Followers keep their own request text.
        assert report.results[1].result.request == requests[1]
        assert report.usage.semcache_hits == 2
        assert report.semantic_hits == 2

    def test_invalidation_restores_fresh_execution(self, movie_dataset):
        cache = SemanticResultCache(capacity=64)
        server = _server(movie_dataset, cache=cache)
        requests = distinct_requests(3)
        first = server.serve(requests)
        cache.invalidate()
        assert cache.usage.semcache_invalidations == 3
        third = server.serve(requests)
        assert all(r.semantic is None for r in third.results)
        assert third.answers() == first.answers()


class TestWorkerCountInvariance:
    REQUESTS = [
        "Summarize the reviews of the top romance movie",
        "Summarize the reviews of the top romance movie (#1)",
        "summarize the reviews of the top romance movies",
        "Summarize the reviews of the top romance movie (#2)",
        "Summarize the reviews of the top romance movie (#1)!",
        "Summarize the reviews of the top romance movie (#3)",
    ]

    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_replay_byte_identical_with_cache_on(
        self, movie_dataset, workers
    ):
        """Serving the same stream twice from a cold start replays
        byte-identically at workers 1/4/8 with the cache on — timings,
        worker assignment, usage, cache state, everything."""

        def run():
            cache = SemanticResultCache(capacity=64)
            server = _server(movie_dataset, workers=workers, cache=cache)
            warm = server.serve(self.REQUESTS)
            hot = server.serve(self.REQUESTS)
            return (
                [
                    (r.index, r.request, r.result, r.worker,
                     r.semantic, r.et_seconds)
                    for report in (warm, hot)
                    for r in report.results
                ],
                warm.usage,
                hot.usage,
                warm.simulated_seconds,
                hot.simulated_seconds,
                cache.stats(),
            )

        assert run() == run()

    @pytest.mark.parametrize("workers", [4, 8])
    def test_outcomes_invariant_across_worker_counts(
        self, movie_dataset, workers
    ):
        """Per-request timings shift with micro-batch composition, but
        the TAG outcomes, the hit/miss/coalesce partition, the cache
        state, and the entire all-hit replay are worker-count pure."""

        def run(n):
            cache = SemanticResultCache(capacity=64)
            server = _server(movie_dataset, workers=n, cache=cache)
            warm = server.serve(self.REQUESTS)
            hot = server.serve(self.REQUESTS)
            return (
                [(r.index, r.result, r.semantic) for r in warm.results],
                _strip_traces(hot),
                hot.usage,
                hot.simulated_seconds,
                cache.stats(),
            )

        assert run(workers) == run(1)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_cache_state_pure_function_of_stream(
        self, movie_dataset, workers
    ):
        cache = SemanticResultCache(capacity=64)
        server = _server(movie_dataset, workers=workers, cache=cache)
        server.serve(distinct_requests(5))
        assert len(cache) == 5
        assert cache.stats() == {
            "entries": 5,
            "index_rows": 5,
            "tombstones": 0,
        }


class TestAdmissionPricesHitsAtZero:
    def _admission(self, db, budget):
        deep_sql = "SELECT movie_title, MOOD(review) FROM movies"

        def query_for(request):
            return deep_sql if "deep" in request else ROMANCE_SQL

        return AdmissionPolicy(
            estimator=SQLAdmissionEstimator(db, query_for),
            max_lm_calls=budget,
        )

    def test_decide_cached_admits_over_budget_request(
        self, movie_dataset
    ):
        movie_dataset.db.register_udf(
            "MOOD", lambda review: "ok", expensive=True
        )
        policy = self._admission(movie_dataset.db, budget=1)
        fresh = policy.decide("deep scan of every review")
        assert not fresh.admit
        cached = policy.decide("deep scan of every review", cached=True)
        assert cached.admit

    def test_cached_hit_skips_admission_budget(self, movie_dataset):
        """A request too expensive to admit fresh is served once it is
        in the cache: the hit costs zero, so admission prices it zero."""
        movie_dataset.db.register_udf(
            "MOOD", lambda review: "ok", expensive=True
        )
        cache = SemanticResultCache(capacity=16)
        generous = _server(
            movie_dataset,
            cache=cache,
            admission=self._admission(movie_dataset.db, budget=10_000),
        )
        request = "Summarize the reviews of the top romance movie"
        warm = generous.serve([request])
        assert warm.results[0].ok and warm.admission_rejected == 0

        class _Rejecting:
            def __call__(self, request):
                raise AssertionError(
                    "estimator must not run for cached requests"
                )

        strict = _server(
            movie_dataset,
            cache=cache,
            admission=AdmissionPolicy(
                estimator=_Rejecting(), max_lm_calls=0
            ),
        )
        report = strict.serve([request])
        assert report.results[0].semantic == "exact"
        assert report.admission_rejected == 0


class TestSemanticTracing:
    def test_hit_trace_has_lookup_leaf(self, movie_dataset):
        cache = SemanticResultCache(capacity=16)
        tracer = Tracer()
        server = _server(movie_dataset, cache=cache, tracer=tracer)
        request = "Summarize the reviews of the top romance movie"
        server.serve([request])
        tracer.clear()
        report = server.serve([request])
        assert report.results[0].semantic == "exact"
        roots = tracer.roots
        assert [index for index, _ in roots] == [0]
        root = roots[0][1]
        leaves = [span for span in root.walk() if span is not root]
        assert [leaf.name for leaf in leaves] == ["semcache.lookup"]
        assert leaves[0].attrs["outcome"] == "hit"
        assert leaves[0].attrs["via"] == "exact"
        assert leaves[0].attrs["similarity"] == 1.0
        assert report.results[0].result.trace is root

    def test_miss_trace_has_lookup_leaf(self, movie_dataset):
        cache = SemanticResultCache(capacity=16)
        tracer = Tracer()
        server = _server(movie_dataset, cache=cache, tracer=tracer)
        report = server.serve(
            ["Summarize the reviews of the top romance movie"]
        )
        assert report.results[0].semantic is None
        root = tracer.roots[0][1]
        first = root.children[0]
        assert first.name == "semcache.lookup"
        assert first.attrs["outcome"] == "miss"

    @pytest.mark.parametrize("workers", [1, 4])
    def test_hit_traces_worker_count_invariant(
        self, movie_dataset, workers
    ):
        """All-hit replay traces are identical at any worker count:
        every lookup resolves sequentially on the serve thread."""

        def spans(n):
            cache = SemanticResultCache(capacity=16)
            tracer = Tracer()
            server = _server(
                movie_dataset, workers=n, cache=cache, tracer=tracer
            )
            server.serve(distinct_requests(4))
            tracer.clear()
            server.serve(distinct_requests(4))
            return [
                (index, [(s.name, s.start_s, s.end_s) for s in root.walk()])
                for index, root in tracer.roots
            ]

        assert spans(workers) == spans(1)


class TestSemanticServeRaceClean:
    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_replay_clean_with_cache_and_registry(
        self, movie_dataset, workers
    ):
        checker = RaceChecker()
        cache = SemanticResultCache(capacity=64)
        server = _server(
            movie_dataset,
            workers=workers,
            cache=cache,
            registry=QueryRegistry(),
        )
        with racecheck.checking(checker):
            warm = server.serve(distinct_requests(9))
            hot = server.serve(distinct_requests(9))
        assert all(r.ok for r in warm.results)
        assert all(r.semantic == "exact" for r in hot.results)
        report = checker.report()
        assert report.ok, report.render()
        assert report.threads >= workers + 1
        assert report.events > 0


class TestRegistryFewShot:
    def test_examples_injected_and_worker_invariant(self):
        """Accepted (question, SQL) entries from run one are retrieval-
        ranked into run two's Text2SQL prompts, identically at any
        worker count."""
        from repro.data import load_domain

        dataset = load_domain("formula_1", seed=0)
        questions = [
            "How many races were held on street circuits?",
            "What is the location of the street circuit that hosted "
            "the fewest races?",
        ]

        def run(workers):
            registry = QueryRegistry()
            lm = SimulatedLM(LMConfig(seed=0))

            def factory(worker_lm):
                return TAGPipeline(
                    LMQuerySynthesizer(
                        worker_lm, dataset, registry=registry
                    ),
                    SQLExecutor(dataset.db, analyze=True),
                    NoGenerator(),
                )

            server = TagServer(
                factory, lm, workers=workers, window=2, registry=registry
            )
            first = server.serve(questions)
            second = server.serve(questions)
            return registry.entries(), first.answers(), second.answers()

        entries_1, first_1, second_1 = run(1)
        entries_4, first_4, second_4 = run(4)
        assert [e.question for e in entries_1] != []
        assert entries_1 == entries_4
        assert first_1 == first_4
        assert second_1 == second_4

    def test_registry_examples_reach_the_prompt(self):
        from repro.data import load_domain

        dataset = load_domain("formula_1", seed=0)
        registry = QueryRegistry()
        registry.record(
            "How many races were held on street circuits?",
            "SELECT COUNT(*) FROM races",
        )
        seen = []

        class _SpyLM:
            def complete(self, prompt, max_tokens=256):
                seen.append(prompt)
                return SimulatedLM(LMConfig(seed=0)).complete(
                    prompt, max_tokens=max_tokens
                )

        synthesizer = LMQuerySynthesizer(
            _SpyLM(), dataset, registry=registry
        )
        synthesizer.synthesize("How many races were held on a street circuit?")
        assert len(seen) == 1
        assert (
            "-- Example Question: How many races were held on street "
            "circuits?" in seen[0]
        )
        assert "-- Example SQL: SELECT COUNT(*) FROM races" in seen[0]
