"""Admission control: deterministic, budget-faithful, worker-blind.

The load-bearing property: the accept/reject set is decided before any
worker exists, so it is byte-identical at every worker count — and the
rest of the report (which requests ran, what they answered) is the
same deterministic function of the admitted stream the PR-1 server
already guarantees.
"""

from __future__ import annotations

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    TAGPipeline,
)
from repro.db import Column, Database, DataType, TableSchema
from repro.serve import (
    AdmissionPolicy,
    SQLAdmissionEstimator,
    TagServer,
)

ROWS = 12


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "reviews",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("body", DataType.TEXT),
            ],
        )
    )
    database.insert(
        "reviews", [(index, f"review {index}") for index in range(ROWS)]
    )
    database.register_udf("JUDGE", lambda v: "pos", expensive=True)
    return database


CHEAP_SQL = "SELECT body FROM reviews LIMIT 1"
DEEP_SQL = "SELECT JUDGE(body) FROM reviews"
BROKEN_SQL = "SELECT ghost FROM reviews"


def _query_for(request: str) -> str | None:
    if "deep" in request:
        return DEEP_SQL
    if "broken" in request:
        return BROKEN_SQL
    if "opaque" in request:
        return None
    return CHEAP_SQL


def _policy(db, budget: int, **kwargs) -> AdmissionPolicy:
    return AdmissionPolicy(
        estimator=SQLAdmissionEstimator(db, _query_for),
        max_lm_calls=budget,
        **kwargs,
    )


def _factory(db):
    def factory(lm):
        return TAGPipeline(
            FixedQuerySynthesizer(CHEAP_SQL),
            SQLExecutor(db),
            NoGenerator(),
        )

    return factory


REQUESTS = [
    "cheap 0",
    "deep 1",
    "cheap 2",
    "opaque 3",
    "deep 4",
    "broken 5",
    "cheap 6",
]


def _partition(report):
    accepted = [r.index for r in report.results if r.worker >= 0]
    rejected = [
        (r.index, r.result.error.kind)
        for r in report.results
        if r.worker == -1
    ]
    return accepted, rejected


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_accept_reject_set_worker_invariant(self, db, workers):
        server = TagServer(
            _factory(db), workers=workers, admission=_policy(db, ROWS - 1)
        )
        accepted, rejected = _partition(server.serve(list(REQUESTS)))
        # DEEP_SQL estimates ROWS LM calls > budget ROWS-1; broken SQL
        # is an analysis rejection; everything else is admitted.
        assert accepted == [0, 2, 3, 6]
        assert rejected == [
            (1, "admission"),
            (4, "admission"),
            (5, "analysis"),
        ]

    def test_reports_identical_across_worker_counts(self, db):
        outcomes = []
        for workers in (1, 2, 4):
            report = TagServer(
                _factory(db),
                workers=workers,
                admission=_policy(db, ROWS - 1),
            ).serve(list(REQUESTS))
            outcomes.append(
                [
                    (r.index, r.ok, str(r.result.error or ""))
                    for r in report.results
                ]
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestBudgetSemantics:
    def test_budget_boundary_is_inclusive(self, db):
        server = TagServer(
            _factory(db), workers=2, admission=_policy(db, ROWS)
        )
        accepted, rejected = _partition(server.serve(["deep scan"]))
        assert accepted == [0]
        assert rejected == []

    def test_rejected_requests_consume_no_lm(self, db):
        report = TagServer(
            _factory(db), workers=2, admission=_policy(db, 0)
        ).serve(["deep 0", "deep 1"])
        assert report.admission_rejected == 2
        assert all(r.lm_calls == 0 for r in report.results)
        assert report.usage.calls == 0

    def test_repair_budget_prices_worst_case(self, db):
        """Each repair may re-execute the query, so admission prices
        ``(1 + repair_budget)`` times the one-shot estimate: a request
        that fits one-shot is rejected once repairs are allowed."""
        fits_once = _policy(db, ROWS)
        assert fits_once.decide("deep scan").admit
        with_repairs = _policy(db, ROWS, repair_budget=2)
        decision = with_repairs.decide("deep scan")
        assert not decision.admit
        assert "x3 worst-case repair attempts" in decision.reason
        # A budget sized for the worst case admits it again.
        roomy = _policy(db, 3 * ROWS, repair_budget=2)
        assert roomy.decide("deep scan").admit

    def test_zero_repair_budget_reason_unchanged(self, db):
        """repair_budget=0 reproduces one-shot pricing and messages."""
        plain = _policy(db, 0).decide("deep scan")
        priced = _policy(db, 0, repair_budget=0).decide("deep scan")
        assert plain == priced
        assert "repair" not in plain.reason

    def test_token_budget(self, db):
        policy = AdmissionPolicy(
            estimator=SQLAdmissionEstimator(db, _query_for),
            max_lm_calls=10**9,
            max_lm_tokens=1,
        )
        report = TagServer(
            _factory(db), workers=1, admission=policy
        ).serve(["deep 0"])
        assert report.admission_rejected == 1
        error = report.results[0].result.error
        assert "LM tokens" in error.message

    def test_analysis_rejection_is_step_zero(self, db):
        report = TagServer(
            _factory(db), workers=1, admission=_policy(db, ROWS)
        ).serve(["broken 0"])
        error = report.results[0].result.error
        assert error.kind == "analysis"
        assert error.step == 0

    def test_reject_invalid_false_admits_broken_sql(self, db):
        report = TagServer(
            _factory(db),
            workers=1,
            admission=_policy(db, ROWS, reject_invalid=False),
        ).serve(["broken 0"])
        assert report.admission_rejected == 0
        # It was dispatched (the demo pipeline runs CHEAP_SQL anyway).
        assert report.results[0].worker == 0

    def test_estimator_abstention_admits(self, db):
        report = TagServer(
            _factory(db), workers=1, admission=_policy(db, 0)
        ).serve(["opaque 0"])
        assert report.admission_rejected == 0


class TestReportAccounting:
    def test_counter_and_errors_align(self, db):
        report = TagServer(
            _factory(db), workers=2, admission=_policy(db, ROWS - 1)
        ).serve(list(REQUESTS))
        assert report.admission_rejected == 3
        assert len(report.errors) == 3
        assert len(report.results) == len(REQUESTS)
        assert report.availability == pytest.approx(4 / 7)

    def test_no_admission_is_bit_identical_to_baseline(self, db):
        plain = TagServer(_factory(db), workers=2).serve(list(REQUESTS))
        assert plain.admission_rejected == 0
        assert all(r.worker >= 0 for r in plain.results)
