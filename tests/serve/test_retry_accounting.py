"""Regression tests pinning Usage counters on the retry/fallback path.

The bug class under test: a retried request being re-metered as a fresh
cache miss (double-counting ``cache_misses``), and a partially failed
batch re-executing — and re-billing — prompts that had already
succeeded.  Each test scripts an exact fault schedule and pins the
exact counter values, so any re-metering regression flips a number.
"""

from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.lm.prompts import summary_prompt
from repro.lm.tokenizer import count_tokens
from repro.serve import BatchingLM
from repro.serve.resilience import (
    ResiliencePolicy,
    ResilientLM,
    RetryPolicy,
)

PROMPT_A = summary_prompt("Summarize the notes", ["hello", "world"])
PROMPT_B = summary_prompt("Summarize the letters", ["alpha", "beta"])


def stack(script, cache_size=0):
    """FaultyLM (scripted) -> BatchingLM -> ResilientLM."""
    faulty = FaultyLM(
        SimulatedLM(LMConfig(seed=0)), FaultPlan(script=script)
    )
    batching = BatchingLM(faulty, cache_size=cache_size)
    resilient = ResilientLM(
        batching, ResiliencePolicy(retry=RetryPolicy(max_attempts=3))
    )
    return resilient


class TestRetryMeteringWithCache:
    def test_retried_request_meters_one_cache_miss(self):
        """One transient fault then success: exactly one logical miss.

        The first submission misses (metered), errors, and is retried;
        the retry is a continuation of the same logical request, so it
        must NOT be metered as a second miss (the pre-fix behaviour)
        nor as a hit.
        """
        resilient = stack(("transient", None), cache_size=4)
        response = resilient.complete(PROMPT_A)
        usage = resilient.usage
        assert usage.cache_misses == 1
        assert usage.cache_hits == 0
        assert usage.retries == 1
        assert usage.faults_injected == 1
        # The model ran once: the fault was injected before the call.
        assert usage.calls == 1
        assert usage.prompt_tokens == count_tokens(PROMPT_A)
        assert response.prompt_tokens == count_tokens(PROMPT_A)

    def test_post_retry_completion_is_a_genuine_hit(self):
        """After the retried call lands in the cache, a fresh request
        for the same prompt is a normal (metered) hit."""
        resilient = stack(("transient", None), cache_size=4)
        resilient.complete(PROMPT_A)
        resilient.complete(PROMPT_A)
        usage = resilient.usage
        assert usage.cache_misses == 1
        assert usage.cache_hits == 1
        assert usage.calls == 1

    def test_healthy_path_unchanged(self):
        resilient = stack((None,), cache_size=4)
        resilient.complete(PROMPT_A)
        usage = resilient.usage
        assert usage.cache_misses == 1
        assert usage.cache_hits == 0
        assert usage.retries == 0
        assert usage.calls == 1


class TestPartialBatchRetry:
    def test_failed_slot_retries_without_rebilling_successes(self):
        """Batch of two, second slot faults: only the failure re-runs.

        Script: the batch pre-flight peek rejects the batch (slot 1 is
        a fault), the per-prompt replay consumes slot 0 (success,
        billed) and slot 1 (transient error), and the resilience layer
        retries only PROMPT_B, consuming slot 2 (success).  PROMPT_A's
        already-billed response is reused, so its tokens appear exactly
        once.
        """
        resilient = stack((None, "transient", None))
        responses = resilient.complete_batch([PROMPT_A, PROMPT_B])
        assert len(responses) == 2
        usage = resilient.usage
        assert usage.calls == 2
        assert usage.retries == 1
        assert usage.faults_injected == 1
        assert usage.prompt_tokens == (
            count_tokens(PROMPT_A) + count_tokens(PROMPT_B)
        )

    def test_plain_inner_keeps_whole_batch_replay(self):
        """Without try_complete_batch (bare FaultyLM inner), the old
        per-prompt re-drive still applies and stays correct."""
        faulty = FaultyLM(
            SimulatedLM(LMConfig(seed=0)),
            FaultPlan(script=("transient", None, None)),
        )
        resilient = ResilientLM(
            faulty, ResiliencePolicy(retry=RetryPolicy(max_attempts=3))
        )
        responses = resilient.complete_batch([PROMPT_A, PROMPT_B])
        assert len(responses) == 2
        assert resilient.usage.faults_injected == 1
