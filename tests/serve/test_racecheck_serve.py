"""Trace-replay race checking of real serve workloads (E19).

Runs the instrumented serving stack under an installed
:class:`RaceChecker` across a worker-count sweep and asserts the replay
is race-clean — and that the instrumentation does not perturb answers.
A deliberately broken cache (lock bypassed) proves the harness would
catch a regression.
"""

from __future__ import annotations

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.obs import racecheck
from repro.obs.metrics import MetricsRegistry
from repro.obs.racecheck import RaceChecker
from repro.serve import TagServer

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


@pytest.fixture(scope="module")
def movie_dataset():
    return movies.build()


def romance_factory(dataset):
    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(ROMANCE_SQL),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    return factory


def requests(count: int) -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(count)
    ]


def _checked_serve(dataset, workers: int, *, cache_size: int = 0):
    checker = RaceChecker()
    server = TagServer(
        romance_factory(dataset),
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=max(2, workers),
        cache_size=cache_size,
    )
    with racecheck.checking(checker):
        report = server.serve(requests(9))
    return report, checker.report()


class TestServeSweepIsRaceClean:
    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_serve_replay_clean(self, movie_dataset, workers):
        serve_report, race_report = _checked_serve(
            movie_dataset, workers
        )
        assert all(r.ok for r in serve_report.results)
        assert race_report.ok, race_report.render()
        # The replay really exercised the instrumented stack: the main
        # thread plus each tag-worker appears in the checker.
        assert race_report.threads == workers + 1
        assert race_report.events > 0
        assert race_report.variables > 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_cached_serve_replay_clean(self, movie_dataset, workers):
        serve_report, race_report = _checked_serve(
            movie_dataset, workers, cache_size=16
        )
        assert all(r.ok for r in serve_report.results)
        assert race_report.ok, race_report.render()

    def test_checker_does_not_perturb_answers(self, movie_dataset):
        checked, _ = _checked_serve(movie_dataset, workers=4)
        plain = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=4,
        ).serve(requests(9))
        assert checked.answers() == plain.answers()
        assert checked.simulated_seconds == plain.simulated_seconds

    def test_metrics_sweep_counters(self, movie_dataset):
        registry = MetricsRegistry()
        checker = RaceChecker(metrics=registry)
        server = TagServer(
            romance_factory(movie_dataset),
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=4,
        )
        with racecheck.checking(checker):
            server.serve(requests(6))
        report = checker.report()
        assert report.ok
        assert (
            registry.counter("repro_conc_events_total").value
            == report.events
        )
        assert (
            registry.counter("repro_conc_vars_total").value
            == report.variables
        )
        assert registry.counter("repro_conc_races_total").value == 0


class TestHarnessCatchesSeededServeRace:
    def test_lockless_memo_cache_is_flagged(self, movie_dataset):
        """Re-introduce the UDFMemoCache bug (mutation without its
        lock) inside a serve replay: the checker must flag it."""

        class _LocklessCache:
            def __init__(self) -> None:
                self._hits = 0

            def poke(self) -> None:
                racecheck.read("UDFMemoCache._entries")
                hits = self._hits
                racecheck.write("UDFMemoCache._entries")
                self._hits = hits + 1

        shared = _LocklessCache()

        def factory(lm) -> TAGPipeline:
            class _PokingGenerator:
                def generate(self, request, table):
                    shared.poke()
                    return SingleCallGenerator(
                        lm, aggregation=True
                    ).generate(request, table)

            return TAGPipeline(
                FixedQuerySynthesizer(ROMANCE_SQL),
                SQLExecutor(movie_dataset.db),
                _PokingGenerator(),
            )

        checker = RaceChecker()
        server = TagServer(
            factory,
            SimulatedLM(LMConfig(seed=0)),
            workers=4,
            window=4,
        )
        with racecheck.checking(checker):
            server.serve(requests(12))
        report = checker.report()
        assert not report.ok
        assert any(
            f.variable == "UDFMemoCache._entries"
            for f in report.findings
        )
