"""Repair-loop determinism: identical bytes across runs AND workers.

The self-correcting pipeline adds LM calls (repair prompts) and spans
(``repair``) to a request's execution; the determinism contract of the
serving/observability stack must survive them.  Repair schedules are
pure functions of each request's own prompts — the fault draw hashes
``(seed, prompt, attempt)`` and the repair prompt embeds the failed SQL
and the attempt number — so the traced artifact with repairs firing is
byte-identical for ``workers=1`` and ``workers=8``.

The hypothesis property pins the loop's semantics: whenever a repair
*succeeds*, the answer equals the healthy-run oracle answer — repair
recovers the correct query; it never substitutes a different one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.suite import build_suite
from repro.core import (
    LMQuerySynthesizer,
    NoGenerator,
    RepairPolicy,
    SQLExecutor,
    SelfCorrectingPipeline,
    TAGPipeline,
)
from repro.data import load_domain
from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.obs import Tracer, to_chrome, to_jsonl
from repro.serve import TagServer

#: High enough that several of the ten questions need repairs, low
#: enough that budget 2 usually recovers them.
GARBLE_RATE = 0.6
FAULT_SEED = 5


@pytest.fixture(scope="module")
def formula_1():
    return load_domain("formula_1", seed=0)


@pytest.fixture(scope="module")
def questions():
    return [
        spec.question
        for spec in build_suite()
        if spec.domain == "formula_1"
    ]


def _serve(dataset, questions, workers, max_repairs=2):
    def factory(lm):
        return SelfCorrectingPipeline(
            LMQuerySynthesizer(lm, dataset),
            SQLExecutor(dataset.db, analyze=True),
            NoGenerator(),
            lm=lm,
            schema_sql=dataset.prompt_schema(),
            policy=RepairPolicy(max_repairs=max_repairs),
        )

    tracer = Tracer()
    server = TagServer(
        factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=4,
        fault_plan=FaultPlan(
            seed=FAULT_SEED, malformed_sql_rate=GARBLE_RATE
        ),
        tracer=tracer,
    )
    return tracer, server.serve(questions)


class TestWorkerCountInvariance:
    def test_repairs_fire_and_traces_match_workers_1_vs_8(
        self, formula_1, questions
    ):
        tracer_1, report_1 = _serve(formula_1, questions, workers=1)
        tracer_8, report_8 = _serve(formula_1, questions, workers=8)
        # The scenario is only meaningful if the loop actually ran.
        assert report_1.usage.repair_attempts > 0
        assert report_1.usage.repair_successes > 0
        # Batch-shape counters (batches) legitimately vary with the
        # worker count; every repair/fault/call counter must not.
        for counter in (
            "repair_attempts",
            "repair_successes",
            "repair_exhausted",
            "faults_injected",
            "calls",
        ):
            assert getattr(report_1.usage, counter) == getattr(
                report_8.usage, counter
            )
        assert report_1.answers() == report_8.answers()
        assert to_chrome(tracer_1) == to_chrome(tracer_8)
        assert to_jsonl(tracer_1) == to_jsonl(tracer_8)

    def test_identical_across_repeat_runs(self, formula_1, questions):
        tracer_a, report_a = _serve(formula_1, questions, workers=3)
        tracer_b, report_b = _serve(formula_1, questions, workers=3)
        assert report_a.usage == report_b.usage
        assert to_jsonl(tracer_a) == to_jsonl(tracer_b)

    def test_repair_spans_nested_under_execution_step(
        self, formula_1, questions
    ):
        tracer, report = _serve(formula_1, questions, workers=2)
        names = [
            span.name
            for _, root in tracer.roots
            for span in root.walk()
        ]
        assert "repair" in names
        # Repair LM calls happen inside the repair span's subtree.
        repaired = next(
            root
            for _, root in tracer.roots
            if any(span.name == "repair" for span in root.walk())
        )
        repair_span = next(
            span for span in repaired.walk() if span.name == "repair"
        )
        assert repair_span.attrs["attempt"] == 1


_PROPERTY_DATASET = load_domain("formula_1", seed=0)
_PROPERTY_QUESTIONS = [
    spec.question
    for spec in build_suite()
    if spec.domain == "formula_1"
][:4]
_ORACLE = {}
for _question in _PROPERTY_QUESTIONS:
    _result = TAGPipeline(
        LMQuerySynthesizer(
            SimulatedLM(LMConfig(seed=0)), _PROPERTY_DATASET
        ),
        SQLExecutor(_PROPERTY_DATASET.db, analyze=True),
        NoGenerator(),
    ).run(_question)
    assert _result.ok
    _ORACLE[_question] = _result.answer


class TestRepairRestoresOracleAnswer:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        rate=st.sampled_from([0.2, 0.4, 0.6, 0.9]),
        budget=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_repaired_answer_equals_oracle(self, seed, rate, budget):
        """For any fault seed/rate and repair budget: every request the
        loop answers (repaired or not) matches the healthy run."""
        lm = FaultyLM(
            SimulatedLM(LMConfig(seed=0)),
            FaultPlan(seed=seed, malformed_sql_rate=rate),
        )
        pipeline = SelfCorrectingPipeline(
            LMQuerySynthesizer(lm, _PROPERTY_DATASET),
            SQLExecutor(_PROPERTY_DATASET.db, analyze=True),
            NoGenerator(),
            lm=lm,
            schema_sql=_PROPERTY_DATASET.prompt_schema(),
            policy=RepairPolicy(max_repairs=budget),
        )
        for question in _PROPERTY_QUESTIONS:
            result = pipeline.run(question)
            if result.ok:
                assert result.answer == _ORACLE[question]
                if result.repairs:
                    # A successful loop ends with an ok attempt whose
                    # SQL is what actually ran.
                    assert result.repairs[-1].ok
                    assert result.repairs[-1].sql == result.query
            else:
                assert result.error.kind == "repair_exhausted"
                assert len(result.error.repairs) == budget + 1
