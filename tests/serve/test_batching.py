"""Equivalence and determinism tests for the micro-batching LM facade.

The determinism guarantee behind every ET number in the tables:

- ``complete_batch(prompts)`` returns exactly the texts and token
  counts of per-prompt ``complete`` (batching buys latency, nothing
  else);
- ``BatchingLM`` under real concurrency matches a single-threaded
  ``SimulatedLM`` answer-for-answer and token-for-token, and its
  simulated seconds are identical across reruns.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ContextLengthError, PromptRoutingError
from repro.lm import LMConfig, SimulatedLM, prompts
from repro.serve import BatchingLM, VirtualClock

CONDITIONS = [
    "Palo Alto is a city in the Silicon Valley region",
    "Fresno is a city in the Bay Area region",
    "Oakland is a city in the Bay Area region",
    "Napa is a city in the Bay Area region",
    "San Jose is a city in the Silicon Valley region",
]

PROMPT_POOL = [
    *[prompts.judgment_prompt(condition) for condition in CONDITIONS],
    prompts.scoring_prompt("is technical", "the drivetrain torque map"),
    prompts.relevance_prompt("formula one races", "- name: Sepang"),
    prompts.comparison_prompt("is more technical", "gearbox", "picnic"),
    prompts.summary_prompt("Summarize the rows", ["- a: 1", "- a: 2"]),
]


def fresh_lm() -> SimulatedLM:
    return SimulatedLM(LMConfig(seed=0))


class TestBatchSequentialEquivalence:
    """complete_batch must equal per-prompt complete on the inner LM."""

    @given(
        st.lists(
            st.sampled_from(PROMPT_POOL), min_size=1, max_size=12
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_texts_and_tokens_match(self, prompt_list):
        batched = fresh_lm().complete_batch(prompt_list)
        sequential_lm = fresh_lm()
        sequential = [
            sequential_lm.complete(prompt) for prompt in prompt_list
        ]
        assert [r.text for r in batched] == [r.text for r in sequential]
        assert [r.prompt_tokens for r in batched] == [
            r.prompt_tokens for r in sequential
        ]
        assert [r.output_tokens for r in batched] == [
            r.output_tokens for r in sequential
        ]

    @given(
        st.lists(st.sampled_from(PROMPT_POOL), min_size=1, max_size=12)
    )
    @settings(max_examples=25, deadline=None)
    def test_usage_tokens_match(self, prompt_list):
        batched_lm = fresh_lm()
        batched_lm.complete_batch(prompt_list)
        sequential_lm = fresh_lm()
        for prompt in prompt_list:
            sequential_lm.complete(prompt)
        assert batched_lm.usage.calls == sequential_lm.usage.calls
        assert (
            batched_lm.usage.prompt_tokens
            == sequential_lm.usage.prompt_tokens
        )
        assert (
            batched_lm.usage.output_tokens
            == sequential_lm.usage.output_tokens
        )
        # Batching buys latency: never slower than sequential.
        assert (
            batched_lm.usage.simulated_seconds
            <= sequential_lm.usage.simulated_seconds
        )


def run_concurrent(
    worker_prompts: list[list[str]], window: int, cache_size: int = 0
) -> tuple[list[list], SimulatedLM, VirtualClock]:
    """Run each worker's prompt sequence through one shared BatchingLM."""
    inner = fresh_lm()
    clock = VirtualClock()
    facade = BatchingLM(
        inner, window=window, cache_size=cache_size, clock=clock
    )
    sessions = [
        facade.open_session(order=index)
        for index in range(len(worker_prompts))
    ]
    outputs: list[list] = [[] for _ in worker_prompts]
    errors: list[Exception] = []

    def work(index: int) -> None:
        with sessions[index]:
            try:
                for prompt in worker_prompts[index]:
                    outputs[index].append(facade.complete(prompt))
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(index,))
        for index in range(len(worker_prompts))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    return outputs, inner, clock


class TestConcurrentDeterminism:
    def test_matches_single_threaded_simulated_lm(self):
        worker_prompts = [
            [PROMPT_POOL[(worker + step) % len(PROMPT_POOL)]
             for step in range(3)]
            for worker in range(6)
        ]
        outputs, _, _ = run_concurrent(worker_prompts, window=4)
        reference = fresh_lm()
        for worker, prompt_list in enumerate(worker_prompts):
            for step, prompt in enumerate(prompt_list):
                expected = reference.complete(prompt)
                got = outputs[worker][step]
                assert got.text == expected.text
                assert got.prompt_tokens == expected.prompt_tokens
                assert got.output_tokens == expected.output_tokens

    def test_simulated_seconds_reproducible_across_runs(self):
        worker_prompts = [
            [PROMPT_POOL[(worker * 2 + step) % len(PROMPT_POOL)]
             for step in range(4)]
            for worker in range(5)
        ]
        runs = [
            run_concurrent(worker_prompts, window=3) for _ in range(3)
        ]
        seconds = [
            inner.usage.simulated_seconds for _, inner, _ in runs
        ]
        clocks = [clock.now() for _, _, clock in runs]
        assert seconds[0] == seconds[1] == seconds[2]
        assert clocks[0] == clocks[1] == clocks[2]
        texts = [
            [[r.text for r in worker] for worker in outputs]
            for outputs, _, _ in runs
        ]
        assert texts[0] == texts[1] == texts[2]

    def test_wider_window_never_slower(self):
        worker_prompts = [
            [PROMPT_POOL[(worker + step) % len(PROMPT_POOL)]
             for step in range(3)]
            for worker in range(8)
        ]
        _, narrow, _ = run_concurrent(worker_prompts, window=1)
        _, wide, _ = run_concurrent(worker_prompts, window=8)
        assert wide.usage.prompt_tokens == narrow.usage.prompt_tokens
        assert wide.usage.output_tokens == narrow.usage.output_tokens
        assert (
            wide.usage.simulated_seconds
            < narrow.usage.simulated_seconds
        )

    def test_clock_advances_by_total_batch_latency(self):
        worker_prompts = [[PROMPT_POOL[0]], [PROMPT_POOL[1]]]
        _, inner, clock = run_concurrent(worker_prompts, window=8)
        assert clock.now() == pytest.approx(
            inner.usage.simulated_seconds
        )


class TestFacadeInterface:
    def test_drop_in_single_call(self):
        facade = BatchingLM(fresh_lm(), window=4)
        expected = fresh_lm().complete(PROMPT_POOL[0])
        got = facade.complete(PROMPT_POOL[0])
        assert got.text == expected.text
        assert got.output_tokens == expected.output_tokens

    def test_facade_complete_batch(self):
        facade = BatchingLM(fresh_lm(), window=2)
        expected = fresh_lm().complete_batch(PROMPT_POOL[:5])
        got = facade.complete_batch(PROMPT_POOL[:5])
        assert [r.text for r in got] == [r.text for r in expected]

    def test_empty_batch(self):
        assert BatchingLM(fresh_lm()).complete_batch([]) == []

    def test_window_validated(self):
        with pytest.raises(ValueError):
            BatchingLM(fresh_lm(), window=0)

    def test_usage_is_shared_with_inner(self):
        inner = fresh_lm()
        facade = BatchingLM(inner)
        facade.complete(PROMPT_POOL[0])
        assert facade.usage is inner.usage
        assert inner.usage.calls == 1
        facade.reset_usage()
        assert inner.usage.calls == 0


class TestErrorIsolation:
    def test_oversized_prompt_matches_unbatched_error(self):
        inner = SimulatedLM(LMConfig(seed=0, context_window=50))
        facade = BatchingLM(inner, window=4)
        with pytest.raises(ContextLengthError):
            facade.complete(prompts.judgment_prompt("x" * 1000))
        assert inner.usage.context_errors == 1
        assert inner.usage.calls == 0

    def test_oversized_prompt_spares_batch_mates(self):
        inner = SimulatedLM(LMConfig(seed=0, context_window=60))
        facade = BatchingLM(inner, window=4)
        oversized = prompts.judgment_prompt("y" * 1000)
        fine = prompts.judgment_prompt(CONDITIONS[0])
        sessions = [facade.open_session(order=i) for i in range(2)]
        outcomes: dict[int, object] = {}

        def work(index: int, prompt: str) -> None:
            with sessions[index]:
                try:
                    outcomes[index] = facade.complete(prompt)
                except Exception as exc:  # noqa: BLE001
                    outcomes[index] = exc

        threads = [
            threading.Thread(target=work, args=(0, oversized)),
            threading.Thread(target=work, args=(1, fine)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert isinstance(outcomes[0], ContextLengthError)
        assert outcomes[1].text == "yes"

    def test_unroutable_prompt_spares_batch_mates(self):
        facade = BatchingLM(fresh_lm(), window=4)
        sessions = [facade.open_session(order=i) for i in range(2)]
        outcomes: dict[int, object] = {}

        def work(index: int, prompt: str) -> None:
            with sessions[index]:
                try:
                    outcomes[index] = facade.complete(prompt)
                except Exception as exc:  # noqa: BLE001
                    outcomes[index] = exc

        threads = [
            threading.Thread(
                target=work, args=(0, "gibberish with no header")
            ),
            threading.Thread(
                target=work,
                args=(1, prompts.judgment_prompt(CONDITIONS[0])),
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert isinstance(outcomes[0], PromptRoutingError)
        assert outcomes[1].text == "yes"


class TestPromptCache:
    def test_hit_returns_identical_text_at_zero_latency(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, cache_size=8)
        first = facade.complete(PROMPT_POOL[0])
        second = facade.complete(PROMPT_POOL[0])
        assert second.text == first.text
        assert second.output_tokens == first.output_tokens
        assert second.latency_s == 0.0
        assert inner.usage.cache_hits == 1
        assert inner.usage.cache_misses == 1

    def test_hits_do_not_double_meter(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, cache_size=8)
        facade.complete(PROMPT_POOL[0])
        calls = inner.usage.calls
        tokens = inner.usage.prompt_tokens + inner.usage.output_tokens
        seconds = inner.usage.simulated_seconds
        facade.complete(PROMPT_POOL[0])
        assert inner.usage.calls == calls
        assert (
            inner.usage.prompt_tokens + inner.usage.output_tokens
            == tokens
        )
        assert inner.usage.simulated_seconds == seconds

    def test_max_tokens_is_part_of_the_key(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, cache_size=8)
        facade.complete(PROMPT_POOL[0], max_tokens=4)
        facade.complete(PROMPT_POOL[0], max_tokens=8)
        assert inner.usage.cache_hits == 0
        assert inner.usage.cache_misses == 2

    def test_inflight_duplicates_coalesce(self):
        """Concurrent identical prompts share one inner call."""
        outputs, inner, _ = run_concurrent(
            [[PROMPT_POOL[0]], [PROMPT_POOL[0]], [PROMPT_POOL[0]]],
            window=8,
            cache_size=8,
        )
        texts = {worker[0].text for worker in outputs}
        assert len(texts) == 1
        assert inner.usage.calls == 1
        assert inner.usage.cache_misses == 1
        assert inner.usage.cache_hits == 2

    def test_disabled_cache_meters_nothing(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, cache_size=0)
        facade.complete(PROMPT_POOL[0])
        facade.complete(PROMPT_POOL[0])
        assert inner.usage.cache_hits == 0
        assert inner.usage.cache_misses == 0
        assert inner.usage.calls == 2
