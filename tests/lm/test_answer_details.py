"""Detailed unit tests for the in-context answer handler internals."""

import pytest

from repro.lm.handlers import answer as answer_module
from repro.lm.handlers.answer import (
    _answer_key,
    _as_float,
    _format_list,
    _parse_data_points,
    _text_key,
)
from repro.lm.prompts import answer_prompt
from repro.lm.router import HandlerContext


class TestParsing:
    def test_parse_data_points(self):
        prompt = answer_prompt(
            "q", [{"a": "1", "b": "two"}, {"a": "3", "b": "four"}]
        )
        records = _parse_data_points(prompt)
        assert records == [
            {"a": "1", "b": "two"},
            {"a": "3", "b": "four"},
        ]

    def test_parse_stops_at_question(self):
        prompt = answer_prompt("what about - a: fake?", [{"a": "1"}])
        records = _parse_data_points(prompt)
        assert records == [{"a": "1"}]

    def test_values_with_colons_preserved(self):
        prompt = answer_prompt("q", [{"time": "12:30:00"}])
        assert _parse_data_points(prompt) == [{"time": "12:30:00"}]


class TestHelpers:
    def test_as_float(self):
        assert _as_float("2.5") == 2.5
        assert _as_float("x") is None
        assert _as_float(None) is None

    def test_text_key_preference(self):
        assert _text_key(["Id", "Text", "Title"]) == "Text"
        assert _text_key(["Id", "Title"]) == "Title"
        assert _text_key(["Id", "Score"]) is None

    def test_format_list_quotes_strings(self):
        assert _format_list(["K-8", "9"]) == '["K-8", 9]'

    def test_format_list_escapes_quotes(self):
        rendered = _format_list(['he said "hi"'])
        import ast

        assert ast.literal_eval(rendered) == ['he said "hi"']

    def test_answer_key_prefers_question_phrase(self):
        records = [{"GSoffered": "K-8", "City": "X"}]
        key = _answer_key(
            "What is the grade span offered in the school?", records
        )
        assert key == "GSoffered"


class TestRankingTruncation:
    def test_top_n_request_truncates(self, lm):
        records = [
            {"Text": "Oh great, broken again."},
            {"Text": "See the survey."},
            {"Text": "Yeah right, that will work."},
            {"Text": "Helpful link, thanks."},
        ]
        response = lm.complete(
            answer_prompt(
                "List the texts of the 2 most sarcastic comments.",
                records,
            )
        )
        import ast

        values = ast.literal_eval(response.text)
        assert len(values) == 2

    def test_in_order_of_with_top_n(self, lm):
        records = [{"Title": f"t{i}"} for i in range(6)]
        response = lm.complete(
            answer_prompt(
                "Of the top 3, list their titles in order of most "
                "technical to least technical.",
                records,
            )
        )
        import ast

        assert len(ast.literal_eval(response.text)) == 3


class TestCountDrift:
    def test_drift_magnitude_grows_with_overflow(self, kb):
        from repro.knowledge import FuzzyKnowledge

        context = HandlerContext(
            fuzzy=FuzzyKnowledge(kb, seed=0),
            kb=kb,
            seed=0,
            reliable_rows=12,
        )
        small = [{"v": str(i)} for i in range(14)]
        large = [{"v": str(i)} for i in range(60)]
        small_answer = answer_module._count_answer(
            "How many rows?", small, context
        )
        large_answer = answer_module._count_answer(
            "How many rows?", large, context
        )
        small_error = abs(int(small_answer.strip("[]")) - 14)
        large_error = abs(int(large_answer.strip("[]")) - 60)
        assert 1 <= small_error <= 2
        assert large_error >= small_error

    def test_no_drift_within_reliable_window(self, kb):
        from repro.knowledge import FuzzyKnowledge

        context = HandlerContext(
            fuzzy=FuzzyKnowledge(kb, seed=0),
            kb=kb,
            seed=0,
            reliable_rows=12,
        )
        records = [{"v": str(i)} for i in range(10)]
        answer = answer_module._count_answer(
            "How many rows?", records, context
        )
        assert answer == "[10]"
