"""Unit tests for the SimulatedLM core: tokenizer, latency, model ops."""

import pytest

from repro.errors import ContextLengthError, PromptRoutingError
from repro.lm import LMConfig, LatencyModel, SimulatedLM, count_tokens
from repro.lm.prompts import judgment_prompt


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_roughly_four_chars_per_token(self):
        assert count_tokens("a" * 400) == 100

    def test_word_floor(self):
        text = "a b c d e"
        assert count_tokens(text) >= 5

    def test_monotone_in_length(self):
        assert count_tokens("x" * 100) <= count_tokens("x" * 200)


class TestLatencyModel:
    def test_call_components(self):
        model = LatencyModel(
            overhead_s=1.0, prefill_s_per_1k=2.0, decode_s_per_token=0.5
        )
        assert model.call_seconds(1000, 10) == pytest.approx(
            1.0 + 2.0 + 5.0
        )

    def test_empty_batch_is_free(self):
        assert LatencyModel().batch_seconds([]) == 0.0

    def test_batching_amortises(self):
        model = LatencyModel()
        requests = [(100, 5)] * 16
        batched = model.batch_seconds(requests)
        sequential = sum(
            model.call_seconds(prompt, output)
            for prompt, output in requests
        )
        assert batched < sequential / 3

    def test_parallelism_capped(self):
        model = LatencyModel(max_parallel=4)
        small = model.batch_seconds([(100, 1)] * 4)
        large = model.batch_seconds([(100, 1)] * 8)
        assert large > small


class TestSimulatedLM:
    def test_deterministic_output(self):
        prompt = judgment_prompt(
            "Palo Alto is a city in the Silicon Valley region"
        )
        first = SimulatedLM(LMConfig(seed=0)).complete(prompt)
        second = SimulatedLM(LMConfig(seed=0)).complete(prompt)
        assert first.text == second.text == "yes"

    def test_usage_accounting(self, lm):
        prompt = judgment_prompt("Fresno is a city in the Bay Area region")
        response = lm.complete(prompt)
        assert lm.usage.calls == 1
        assert lm.usage.prompt_tokens == response.prompt_tokens
        assert lm.usage.simulated_seconds == pytest.approx(
            response.latency_s
        )

    def test_batch_shares_overhead(self):
        lm = SimulatedLM(LMConfig(seed=0))
        prompts = [
            judgment_prompt(f"{city} is a city in the Bay Area region")
            for city in ("Oakland", "Fresno", "San Jose", "Napa")
        ]
        responses = lm.complete_batch(prompts)
        batched_total = sum(r.latency_s for r in responses)
        solo = SimulatedLM(LMConfig(seed=0))
        sequential_total = sum(
            solo.complete(prompt).latency_s for prompt in prompts
        )
        assert batched_total < sequential_total
        assert lm.usage.batches == 1
        assert lm.usage.calls == 4

    def test_empty_batch(self, lm):
        assert lm.complete_batch([]) == []

    def test_context_window_enforced(self):
        lm = SimulatedLM(LMConfig(seed=0, context_window=50))
        with pytest.raises(ContextLengthError):
            lm.complete(judgment_prompt("x" * 1000))
        assert lm.usage.context_errors == 1

    def test_max_tokens_truncates(self, lm, datasets):
        from repro.lm.prompts import answer_prompt

        records = datasets["formula_1"].frames["races"].to_records()[:10]
        prompt = answer_prompt(
            "Provide information about the races.", records,
            aggregation=True,
        )
        response = lm.complete(prompt, max_tokens=5)
        assert response.output_tokens <= 5

    def test_truncation_invariant_output_tokens_match_text(
        self, lm, datasets
    ):
        """Regression: ``output_tokens == count_tokens(text)`` always.

        The old truncation sliced to ``budget * 4`` characters and
        *reported* ``budget`` tokens; whitespace-dense text re-counts
        higher than that, so the meter and the text disagreed.
        """
        from repro.lm.prompts import answer_prompt

        records = datasets["formula_1"].frames["races"].to_records()[:10]
        prompt = answer_prompt(
            "Provide information about the races.", records,
            aggregation=True,
        )
        for budget in (1, 3, 5, 17, 64):
            response = lm.complete(prompt, max_tokens=budget)
            assert response.output_tokens == count_tokens(response.text)
            assert response.output_tokens <= budget

    def test_truncate_to_tokens_respects_word_floor(self):
        # 40 one-char words: 2 chars per word, so the 4-chars-per-token
        # inverse alone would keep 5 * 4 = 20 chars = 10 words.
        text = " ".join("a" * 40)
        truncated = SimulatedLM._truncate_to_tokens(text, 5)
        assert count_tokens(truncated) <= 5
        # Maximal: one more character must break the budget.
        longer = text[: len(truncated) + 1]
        assert count_tokens(longer) > 5 or longer == truncated

    def test_truncate_to_tokens_zero_budget(self):
        assert SimulatedLM._truncate_to_tokens("anything at all", 0) == ""

    def test_truncate_to_tokens_noop_within_budget(self):
        assert SimulatedLM._truncate_to_tokens("short", 10) == "short"

    def test_unroutable_prompt_raises(self, lm):
        with pytest.raises(PromptRoutingError):
            lm.complete("complete gibberish with no recognised header")

    def test_reset_usage(self, lm):
        lm.complete(judgment_prompt("Napa is a city in the Bay Area region"))
        lm.reset_usage()
        assert lm.usage.calls == 0

    def test_usage_snapshot_since(self, lm):
        before = lm.usage.snapshot()
        lm.complete(judgment_prompt("Napa is a city in the Bay Area region"))
        delta = lm.usage.since(before)
        assert delta.calls == 1
        assert delta.simulated_seconds > 0
