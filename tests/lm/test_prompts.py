"""Unit tests for prompt builders."""

from repro.lm import prompts


class TestOperatorPrompts:
    def test_judgment(self):
        prompt = prompts.judgment_prompt("X is true")
        assert prompt.startswith(prompts.JUDGMENT_HEADER)
        assert prompt.endswith("Statement: X is true")

    def test_scoring_and_relevance(self):
        assert "Criterion: c\nItem: i" in prompts.scoring_prompt("c", "i")
        assert "Query: q\nDocument: d" in prompts.relevance_prompt(
            "q", "d"
        )

    def test_comparison(self):
        prompt = prompts.comparison_prompt("c", "left", "right")
        assert "A: left" in prompt and "B: right" in prompt

    def test_summary_numbers_items(self):
        prompt = prompts.summary_prompt("sum it", ["one", "two"])
        assert "Item 1: one" in prompt and "Item 2: two" in prompt


class TestAnswerPrompt:
    def test_paper_serialization(self):
        prompt = prompts.answer_prompt(
            "How many?", [{"School": "A", "AvgScrMath": 600}]
        )
        assert prompt.startswith(prompts.ANSWER_LIST_HEADER)
        assert "Data Point 1:\n- School: A\n- AvgScrMath: 600" in prompt
        assert prompt.endswith("Question: How many?")

    def test_aggregation_variant_differs(self):
        prompt = prompts.answer_prompt("Summarize", [], aggregation=True)
        assert prompt.startswith(prompts.ANSWER_FREEFORM_HEADER)
        assert "evaluatable in Python" not in prompt

    def test_multiple_points_blank_line_separated(self):
        prompt = prompts.answer_prompt(
            "q", [{"a": 1}, {"a": 2}]
        )
        assert "Data Point 1" in prompt and "Data Point 2" in prompt


class TestText2SQLPrompt:
    def test_bird_format(self):
        prompt = prompts.text2sql_prompt(
            "CREATE TABLE t (a INTEGER)", "How many rows?"
        )
        assert prompt.startswith("CREATE TABLE")
        assert "-- External Knowledge: None" in prompt
        assert prompt.rstrip().endswith("SELECT")
        assert "-- How many rows?" in prompt

    def test_external_knowledge_included(self):
        prompt = prompts.text2sql_prompt(
            "CREATE TABLE t (a INTEGER)",
            "q",
            external_knowledge="A hint.",
        )
        assert "-- External Knowledge: A hint." in prompt
