"""Unit tests for the schema-vocabulary phrase bank."""

from repro.lm import schema_semantics


TABLES = {
    "schools": ["CDSCode", "School", "City", "GSoffered", "Longitude"],
    "satscores": ["cds", "AvgScrMath", "NumTstTakr"],
}


class TestFindMentions:
    def test_resolves_phrases_to_columns(self):
        mentions = schema_semantics.find_mentions(
            "What is the grade span offered in the school with the "
            "highest longitude?",
            TABLES,
        )
        columns = {(m.table, m.column) for m in mentions}
        assert ("schools", "GSoffered") in columns
        assert ("schools", "Longitude") in columns
        assert ("schools", "School") in columns

    def test_longest_phrase_wins(self):
        mentions = schema_semantics.find_mentions(
            "average score in math", TABLES
        )
        assert [m.column for m in mentions] == ["AvgScrMath"]

    def test_unavailable_table_ignored(self):
        mentions = schema_semantics.find_mentions(
            "the post title", {"schools": ["City"]}
        )
        assert all(m.column != "Title" for m in mentions)

    def test_sorted_by_position(self):
        mentions = schema_semantics.find_mentions(
            "longitude then city then school", TABLES
        )
        positions = [m.position for m in mentions]
        assert positions == sorted(positions)

    def test_word_boundaries_respected(self):
        # 'scity' must not match the 'city' phrase.
        mentions = schema_semantics.find_mentions("viscosity", TABLES)
        assert not mentions

    def test_case_insensitive(self):
        mentions = schema_semantics.find_mentions("LONGITUDE", TABLES)
        assert mentions[0].column == "Longitude"


class TestMatchRecordKey:
    def test_hint_bank_match(self):
        key = schema_semantics.match_record_key(
            "grade span offered", ["GSoffered", "City"]
        )
        assert key == "GSoffered"

    def test_containment_fallback(self):
        key = schema_semantics.match_record_key(
            "the consumption value", ["Consumption"]
        )
        assert key == "Consumption"

    def test_no_match(self):
        assert schema_semantics.match_record_key(
            "zzz", ["Alpha", "Beta"]
        ) is None
