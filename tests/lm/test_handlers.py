"""Unit tests for the LM prompt handlers (judge, summary, answer)."""

import pytest

from repro.lm import LMConfig, SimulatedLM, prompts


@pytest.fixture()
def oracle(oracle_lm):
    return oracle_lm


class TestJudgeHandlers:
    def test_judgment_yes_no(self, oracle):
        yes = oracle.complete(
            prompts.judgment_prompt(
                "Cupertino is a city in the Silicon Valley region"
            )
        )
        no = oracle.complete(
            prompts.judgment_prompt(
                "Sacramento is a city in the Silicon Valley region"
            )
        )
        assert yes.text == "yes"
        assert no.text == "no"

    def test_scoring_returns_float_text(self, lm):
        response = lm.complete(
            prompts.scoring_prompt("most technical", "SGD convergence")
        )
        float(response.text)  # parseable

    def test_relevance_prompt(self, lm):
        response = lm.complete(
            prompts.relevance_prompt("query terms", "query terms echoed")
        )
        assert 0.0 <= float(response.text) <= 1.0

    def test_comparison_answers_a_or_b(self, lm):
        response = lm.complete(
            prompts.comparison_prompt(
                "most technical",
                "Eigenvalue shrinkage in covariance estimation",
                "Weekend reading suggestions",
            )
        )
        assert response.text == "A"


class TestSummaryHandler:
    def test_structured_records_enumerated(self, lm):
        items = [
            f"year: {year}; round: 2; race: Malaysian Grand Prix"
            for year in range(1999, 2018)
        ]
        response = lm.complete(
            prompts.summary_prompt("Summarize the races", items),
            max_tokens=512,
        )
        assert "19 records" in response.text
        assert "1999" in response.text and "2017" in response.text

    def test_prose_items_summarised_extractively(self, lm):
        items = [
            "The answer is helpful and clear.",
            "The derivation skips a step.",
            "A reference would improve the answer.",
        ]
        response = lm.complete(
            prompts.summary_prompt("Summarize the comments", items)
        )
        assert response.text
        # Extractive: output sentences come from the inputs.
        assert any(item.rstrip(".") in response.text for item in items)

    def test_empty_items(self, lm):
        response = lm.complete(prompts.summary_prompt("Summarize", []))
        assert response.text == ""


class TestAnswerHandlerListFormat:
    def _ask(self, lm, question, records):
        return lm.complete(prompts.answer_prompt(question, records)).text

    def test_no_data_points(self, lm):
        assert self._ask(lm, "How many schools are there?", []) == "[]"

    def test_count_small_context_is_exact(self, lm):
        records = [
            {"School": "A", "AvgScrMath": "600"},
            {"School": "B", "AvgScrMath": "500"},
            {"School": "C", "AvgScrMath": "580"},
        ]
        answer = self._ask(
            lm,
            "How many schools have an average math score over 560?",
            records,
        )
        assert answer == "[2]"

    def test_count_long_context_drifts(self, lm):
        records = [
            {"School": f"S{i}", "AvgScrMath": str(500 + i)}
            for i in range(40)
        ]
        answer = self._ask(
            lm,
            "How many schools have an average math score over 510?",
            records,
        )
        exact = sum(1 for i in range(40) if 500 + i > 510)
        assert answer != f"[{exact}]"  # long-context drift

    def test_superlative_lookup(self, lm):
        records = [
            {"School": "A High", "Longitude": "-122.1", "GSoffered": "K-8"},
            {"School": "B High", "Longitude": "-121.5", "GSoffered": "9-12"},
        ]
        answer = self._ask(
            lm,
            "What is the grade span offered in the school with the "
            "highest longitude?",
            records,
        )
        assert answer == '["9-12"]'

    def test_semantic_superlative(self, lm):
        records = [
            {"Id": "1", "Text": "Oh great, another broken proof."},
            {"Id": "2", "Text": "See the 2009 survey for details."},
        ]
        answer = self._ask(
            lm,
            "What is the text of the most sarcastic comment?",
            records,
        )
        assert "Oh great" in answer

    def test_ranking_with_order_of(self, lm):
        records = [
            {"Title": "Weekend reading suggestions"},
            {"Title": "Eigenvalue shrinkage in covariance estimation"},
        ]
        answer = self._ask(
            lm,
            "List their titles in order of most technical to least "
            "technical.",
            records,
        )
        assert answer.index("Eigenvalue") < answer.index("Weekend")


class TestAnswerHandlerFreeform:
    def test_enumerates_given_rows(self, lm):
        prompt = prompts.answer_prompt(
            "Provide information about the races.",
            [{"year": "1999", "round": "2"}],
            aggregation=True,
        )
        response = lm.complete(prompt)
        assert "1999" in response.text

    def test_parametric_fallback_for_known_circuit(self, lm):
        prompt = prompts.answer_prompt(
            "Provide information about the races held on Sepang "
            "International Circuit.",
            [],
            aggregation=True,
        )
        response = lm.complete(prompt)
        assert "general knowledge" in response.text
        assert "Malaysian Grand Prix" in response.text

    def test_parametric_fallback_unknown_topic(self, lm):
        prompt = prompts.answer_prompt(
            "Summarize the quarterly revenue.", [], aggregation=True
        )
        response = lm.complete(prompt)
        assert "do not contain" in response.text


class TestText2SQLHandler:
    def _sql(self, lm, dataset, question):
        prompt = prompts.text2sql_prompt(dataset.prompt_schema(), question)
        return lm.complete(prompt).text

    def test_produces_valid_sql_for_all_suite_queries(
        self, lm, datasets, suite
    ):
        from repro.errors import DatabaseError

        valid = 0
        for spec in suite:
            sql = self._sql(lm, datasets[spec.domain], spec.question)
            assert sql.upper().startswith("SELECT")
            try:
                datasets[spec.domain].db.execute(sql)
                valid += 1
            except DatabaseError:
                pass
        # The synthesizer emits executable SQL for nearly every query.
        assert valid >= len(suite) * 0.9

    def test_count_query_shape(self, lm, datasets):
        sql = self._sql(
            lm,
            datasets["european_football_2"],
            "How many players are taller than Peter Crouch?",
        )
        assert "COUNT(*)" in sql
        assert "height >" in sql

    def test_knowledge_inlining_is_parametric(self, lm, datasets):
        sql = self._sql(
            lm,
            datasets["california_schools"],
            "How many schools are in the Bay Area?",
        )
        assert "City IN (" in sql
        assert "'San Francisco'" in sql

    def test_reasoning_clause_gets_proxy(self, lm, datasets):
        sql = self._sql(
            lm,
            datasets["codebase_community"],
            "Of the 5 posts with the highest popularity, list their "
            "titles in order of most technical to least technical.",
        )
        assert "LENGTH(" in sql  # surface-feature hallucination

    def test_join_inferred_from_foreign_keys(self, lm, datasets):
        sql = self._sql(
            lm,
            datasets["california_schools"],
            "How many schools with an average score in Math over 560 "
            "are in the Bay Area?",
        )
        assert "JOIN" in sql
        assert "cds" in sql

    def test_fallback_when_question_unparseable(self, lm, datasets):
        sql = self._sql(lm, datasets["formula_1"], "zzz qqq?")
        datasets["formula_1"].db.execute(sql)  # still executable
