"""Unit tests for Text2SQL semantic-parser internals."""

from repro.lm.handlers.text2sql import (
    _join_path,
    _parse_question,
    _parse_schema,
)
from repro.lm.prompts import text2sql_prompt


class TestPromptParsing:
    def test_parse_schema_extracts_tables_and_fks(self):
        prompt = text2sql_prompt(
            "CREATE TABLE a\n(\n    id INTEGER PRIMARY KEY,\n"
            "    x TEXT\n)\n\n"
            "CREATE TABLE b\n(\n    aid INTEGER,\n"
            "    FOREIGN KEY (aid) REFERENCES a(id)\n)",
            "q",
        )
        tables, edges = _parse_schema(prompt)
        assert tables == {"a": ["id", "x"], "b": ["aid"]}
        assert edges == [("b", "aid", "a", "id")]

    def test_parse_question_takes_last_comment(self):
        prompt = text2sql_prompt("CREATE TABLE t\n(\n    a TEXT\n)", "The real question?")
        assert _parse_question(prompt) == "The real question?"

    def test_parse_question_ignores_protocol_comments(self):
        prompt = text2sql_prompt(
            "CREATE TABLE t\n(\n    a TEXT\n)",
            "q",
            external_knowledge="A hint.",
        )
        question = _parse_question(prompt)
        assert question == "q"

    def test_malformed_schema_block_skipped(self):
        tables, _ = _parse_schema(
            "CREATE TABLE broken (((\n)\n\nCREATE TABLE ok\n"
            "(\n    a TEXT\n)"
        )
        assert "ok" in tables
        assert "broken" not in tables


class TestJoinPath:
    EDGES = [
        ("satscores", "cds", "schools", "CDSCode"),
        ("frpm", "CDSCode", "schools", "CDSCode"),
        ("comments", "PostId", "posts", "Id"),
        ("comments", "UserId", "users", "Id"),
    ]

    def test_single_table(self):
        order, clauses = _join_path({"schools"}, self.EDGES)
        assert order == ["schools"]
        assert clauses == []

    def test_direct_fk_join(self):
        order, clauses = _join_path(
            {"schools", "satscores"}, self.EDGES
        )
        assert set(order) == {"schools", "satscores"}
        assert len(clauses) == 1
        assert "CDSCode" in clauses[0][1]

    def test_bridge_table_used(self):
        # posts and users connect only through comments.
        order, clauses = _join_path({"posts", "users"}, self.EDGES)
        assert "comments" in order
        assert len(clauses) == 2

    def test_unreachable_table_joined_permissively(self):
        order, clauses = _join_path({"schools", "posts"}, self.EDGES)
        assert set(order) >= {"schools", "posts"}
        assert any(condition == "1 = 1" for _, condition in clauses)

    def test_three_way_join(self):
        order, clauses = _join_path(
            {"schools", "satscores", "frpm"}, self.EDGES
        )
        assert len(clauses) == 2
