"""Usage accounting under mixed complete / complete_batch / cached calls.

The serving layer bills every deployment through one ``Usage`` meter,
so the counters must stay additive however calls are issued, and cache
hits must never double-meter tokens or seconds.
"""

import pytest

from repro.lm import LMConfig, SimulatedLM, Usage, count_tokens, prompts
from repro.serve import BatchingLM

CONDITIONS = [
    "Palo Alto is a city in the Silicon Valley region",
    "Fresno is a city in the Bay Area region",
    "Oakland is a city in the Bay Area region",
    "Napa is a city in the Bay Area region",
]

PROMPTS = [prompts.judgment_prompt(c) for c in CONDITIONS]


def fresh_lm() -> SimulatedLM:
    return SimulatedLM(LMConfig(seed=0))


class TestMixedCallAccounting:
    def test_calls_batches_and_tokens_are_additive(self):
        lm = fresh_lm()
        first = lm.complete(PROMPTS[0])
        batch = lm.complete_batch(PROMPTS[1:3])
        last = lm.complete(PROMPTS[3])
        responses = [first, *batch, last]
        assert lm.usage.calls == 4
        assert lm.usage.batches == 3  # two singles + one batch
        assert lm.usage.prompt_tokens == sum(
            r.prompt_tokens for r in responses
        )
        assert lm.usage.output_tokens == sum(
            r.output_tokens for r in responses
        )
        assert lm.usage.simulated_seconds == pytest.approx(
            sum(r.latency_s for r in responses)
        )

    def test_snapshot_since_covers_every_counter(self):
        lm = fresh_lm()
        lm.complete(PROMPTS[0])
        before = lm.usage.snapshot()
        lm.complete_batch(PROMPTS[1:])
        delta = lm.usage.since(before)
        assert delta.calls == 3
        assert delta.batches == 1
        assert delta.prompt_tokens == sum(
            count_tokens(p) for p in PROMPTS[1:]
        )
        assert delta.simulated_seconds > 0
        assert delta.cache_hits == 0
        assert delta.cache_misses == 0

    def test_usage_defaults_include_cache_counters(self):
        usage = Usage()
        assert usage.cache_hits == 0
        assert usage.cache_misses == 0

    def test_mixed_direct_and_cached_calls(self):
        """Interleave facade (cached) and direct calls on one meter."""
        inner = fresh_lm()
        facade = BatchingLM(inner, window=4, cache_size=16)
        facade.complete(PROMPTS[0])  # miss
        facade.complete(PROMPTS[0])  # hit
        inner.complete(PROMPTS[1])  # direct, bypasses the cache
        facade.complete_batch([PROMPTS[2], PROMPTS[3]])  # two misses
        facade.complete(PROMPTS[2])  # hit
        assert inner.usage.cache_misses == 3
        assert inner.usage.cache_hits == 2
        # Only the 3 misses + 1 direct call touched the model.
        assert inner.usage.calls == 4
        # Every model execution bills its prompt exactly once: P0, P2,
        # P3 through the facade, P1 through the direct call.
        assert inner.usage.prompt_tokens == sum(
            count_tokens(p) for p in PROMPTS
        )

    def test_cache_hits_add_no_seconds(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, window=4, cache_size=16)
        facade.complete(PROMPTS[0])
        seconds = inner.usage.simulated_seconds
        for _ in range(5):
            facade.complete(PROMPTS[0])
        assert inner.usage.simulated_seconds == seconds
        assert inner.usage.cache_hits == 5

    def test_facade_without_cache_matches_sequential_meter(self):
        inner = fresh_lm()
        facade = BatchingLM(inner, window=4)
        for prompt in PROMPTS:
            facade.complete(prompt)
        reference = fresh_lm()
        for prompt in PROMPTS:
            reference.complete(prompt)
        assert inner.usage.calls == reference.usage.calls
        assert inner.usage.prompt_tokens == reference.usage.prompt_tokens
        assert inner.usage.output_tokens == reference.usage.output_tokens
        # Single-threaded use flushes batches of one: same seconds too.
        assert inner.usage.simulated_seconds == pytest.approx(
            reference.usage.simulated_seconds
        )
