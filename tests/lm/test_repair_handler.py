"""Unit tests for the SQL-repair capability (RepairHandler)."""

from repro.lm import prompts

SCHEMA = (
    "CREATE TABLE circuits\n(\n"
    "    circuitId INTEGER PRIMARY KEY,\n"
    "    name TEXT,\n"
    "    location TEXT\n)"
)


def _repair(lm, failed_sql, diagnostics, question="What circuits exist?"):
    prompt = prompts.repair_prompt(
        SCHEMA, question, failed_sql, diagnostics
    )
    return lm.complete(prompt).text


class TestRouting:
    def test_repair_prompt_routes_to_repair_handler(self, lm):
        """The repair prompt embeds the full text2sql schema block; the
        router must still pick the repair handler (registered first)."""
        sql = _repair(
            lm,
            "SELECT NAME FROM circuits",
            "unknown column 'NAME'",
        )
        assert sql == "SELECT name FROM circuits"

    def test_text2sql_prompt_unaffected(self, lm):
        prompt = prompts.text2sql_prompt(SCHEMA, "How many circuits?")
        sql = lm.complete(prompt).text
        assert sql.upper().startswith("SELECT")
        assert "Failed SQL" not in sql


class TestTargetedFixes:
    def test_case_corrects_identifier_everywhere(self, lm):
        sql = _repair(
            lm,
            "SELECT Location FROM circuits ORDER BY Location",
            "error ANA003 at 7..15: unknown column 'Location'",
        )
        assert sql == "SELECT location FROM circuits ORDER BY location"

    def test_drops_hallucinated_select_column(self, lm):
        sql = _repair(
            lm,
            "SELECT hallucinated_col, name FROM circuits",
            "unknown column 'hallucinated_col'",
        )
        assert sql == "SELECT name FROM circuits"

    def test_case_corrects_table_name(self, lm):
        sql = _repair(
            lm,
            "SELECT name FROM Circuits",
            "unknown table 'Circuits'",
        )
        assert sql == "SELECT name FROM circuits"


class TestResynthesisFallback:
    def test_unparseable_sql_is_rederived_from_question(
        self, lm, datasets, suite
    ):
        """Syntax garbage cannot be patched: the handler re-derives the
        query from the question with the text2sql parser, so the repair
        equals a clean synthesis."""
        dataset = datasets["formula_1"]
        question = next(
            s for s in suite if s.domain == "formula_1"
        ).question
        clean = lm.complete(
            prompts.text2sql_prompt(dataset.prompt_schema(), question)
        ).text
        repaired = lm.complete(
            prompts.repair_prompt(
                dataset.prompt_schema(),
                question,
                "tluser TCELES broken garbage",
                "syntax error at position 0: expected SELECT",
            )
        ).text
        assert repaired == clean

    def test_deterministic_across_calls(self, lm):
        first = _repair(
            lm, "SELECT NAME FROM circuits", "unknown column 'NAME'"
        )
        second = _repair(
            lm, "SELECT NAME FROM circuits", "unknown column 'NAME'"
        )
        assert first == second
