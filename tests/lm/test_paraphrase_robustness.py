"""The Text2SQL parser should survive common paraphrases.

Benchmark questions follow the paper's phrasing; a credible semantic
parser cannot be a one-phrasing trick.  These tests rephrase benchmark
asks and check the *structure* of the generated SQL (not exact text).
"""

import pytest

from repro.lm import LMConfig, SimulatedLM
from repro.lm.prompts import text2sql_prompt


@pytest.fixture()
def sql_of(datasets):
    lm = SimulatedLM(LMConfig(seed=0))

    def generate(domain: str, question: str) -> str:
        dataset = datasets[domain]
        return lm.complete(
            text2sql_prompt(dataset.prompt_schema(), question)
        ).text

    return generate


class TestCountParaphrases:
    @pytest.mark.parametrize(
        "question",
        [
            "How many players are shorter than Lionel Messi?",
            "Count the players shorter than Lionel Messi.",
            "Give me the number of players shorter than Lionel Messi.",
            "What is the total number of players shorter than "
            "Lionel Messi?",
        ],
    )
    def test_count_shapes(self, sql_of, question, datasets):
        sql = sql_of("european_football_2", question)
        assert "COUNT(*)" in sql
        assert "height <" in sql
        # All paraphrases execute and agree with each other.
        result = datasets["european_football_2"].db.execute(sql)
        assert isinstance(result.scalar(), int)

    def test_paraphrases_agree(self, sql_of, datasets):
        db = datasets["european_football_2"].db
        answers = {
            db.execute(
                sql_of("european_football_2", question)
            ).scalar()
            for question in (
                "How many players are shorter than Lionel Messi?",
                "Count the players shorter than Lionel Messi.",
            )
        }
        assert len(answers) == 1


class TestLookupParaphrases:
    @pytest.mark.parametrize(
        "question",
        [
            "What is the grade span offered in the school with the "
            "highest longitude?",
            "Show me the grade span offered in the school with the "
            "highest longitude.",
            "Tell me the grade span offered in the school with the "
            "highest longitude.",
        ],
    )
    def test_superlative_lookup_shapes(self, sql_of, question):
        sql = sql_of("california_schools", question)
        assert "GSoffered" in sql
        assert "ORDER BY" in sql and "Longitude" in sql
        assert "LIMIT 1" in sql

    def test_which_form(self, sql_of, datasets):
        sql = sql_of(
            "formula_1",
            "Which circuit hosted the race with the most points?",
        )
        datasets["formula_1"].db.execute(sql)  # executable


class TestKnowledgeParaphrases:
    @pytest.mark.parametrize(
        "question",
        [
            "How many gas stations are in countries that use the Euro?",
            "Count the gas stations in eurozone countries.",
        ],
    )
    def test_euro_inlining(self, sql_of, question):
        sql = sql_of("debit_card_specializing", question)
        assert "Country IN (" in sql
