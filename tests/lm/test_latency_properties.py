"""Property-based tests for the latency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import LatencyModel

requests = st.lists(
    st.tuples(st.integers(1, 5000), st.integers(0, 500)),
    min_size=1,
    max_size=40,
)


class TestLatencyProperties:
    @given(st.integers(1, 10_000), st.integers(0, 1_000))
    @settings(max_examples=60, deadline=None)
    def test_call_cost_positive_and_monotone(self, prompt, output):
        model = LatencyModel()
        base = model.call_seconds(prompt, output)
        assert base > 0
        assert model.call_seconds(prompt + 100, output) > base
        assert model.call_seconds(prompt, output + 10) > base

    @given(requests)
    @settings(max_examples=60, deadline=None)
    def test_batch_never_slower_than_sequential(self, batch):
        model = LatencyModel()
        batched = model.batch_seconds(batch)
        sequential = sum(
            model.call_seconds(prompt, output)
            for prompt, output in batch
        )
        assert batched <= sequential + 1e-9

    @given(requests)
    @settings(max_examples=60, deadline=None)
    def test_batch_at_least_overhead(self, batch):
        model = LatencyModel()
        assert model.batch_seconds(batch) >= model.overhead_s

    @given(requests, requests)
    @settings(max_examples=60, deadline=None)
    def test_batch_monotone_at_fixed_parallelism(self, smaller, extra):
        # Once the batch is at the parallelism cap, adding work can
        # only increase the batch's latency (total work grows while
        # the divisor stays fixed).
        model = LatencyModel(max_parallel=4)
        padded = smaller + [(100, 10)] * 4  # ensure cap reached
        combined = padded + extra
        assert model.batch_seconds(combined) >= (
            model.batch_seconds(padded) - 1e-9
        )

    def test_parallelism_saturates(self):
        model = LatencyModel(max_parallel=8)
        per_request = (100, 10)
        at_cap = model.batch_seconds([per_request] * 8)
        past_cap = model.batch_seconds([per_request] * 16)
        assert past_cap == pytest.approx(
            model.overhead_s + (at_cap - model.overhead_s) * 2
        )
