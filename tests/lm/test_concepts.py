"""Unit tests for NL condition interpretation (repro.lm.concepts)."""

import pytest

from repro.knowledge import FuzzyKnowledge
from repro.lm import concepts


@pytest.fixture()
def fuzzy(kb) -> FuzzyKnowledge:
    return FuzzyKnowledge(kb, seed=0, skepticism=0.0)  # oracle view


def judge(condition, fuzzy, seed=0):
    return concepts.judge(condition, fuzzy, seed)


class TestKnowledgeConditions:
    def test_region_membership(self, fuzzy):
        assert judge(
            "Palo Alto is a city in the Silicon Valley region", fuzzy
        )
        assert not judge(
            "Fresno is a city in the Silicon Valley region", fuzzy
        )

    def test_region_part_of_phrasing(self, fuzzy):
        assert judge("Oakland is part of the Bay Area", fuzzy)

    def test_height_comparisons(self, fuzzy):
        assert judge("190 is taller than Stephen Curry", fuzzy)
        assert not judge("185 is taller than Stephen Curry", fuzzy)
        assert judge(
            "a player with height 165.5 is shorter than Lionel Messi",
            fuzzy,
        )

    def test_unknown_person_height(self, fuzzy):
        assert not judge("190 is taller than Nobody Real", fuzzy)

    def test_euro_and_eu(self, fuzzy):
        assert judge("Slovakia uses the euro", fuzzy)
        assert not judge("Czech Republic uses the euro", fuzzy)
        assert judge(
            "Poland is a member of the European Union", fuzzy
        )

    def test_big_five(self, fuzzy):
        assert judge(
            "England Premier League is one of Europe's 'big five' "
            "football leagues",
            fuzzy,
        )
        assert not judge(
            "Poland Ekstraklasa is one of the big five leagues", fuzzy
        )

    def test_uk(self, fuzzy):
        assert judge("Scotland is part of the United Kingdom", fuzzy)
        assert not judge("Spain is part of the United Kingdom", fuzzy)

    def test_street_circuit(self, fuzzy):
        assert judge("Circuit de Monaco is a street circuit", fuzzy)
        assert not judge(
            "Silverstone Circuit is a street circuit", fuzzy
        )

    def test_circuit_region(self, fuzzy):
        assert judge(
            "Sepang International Circuit is located in southeast asia",
            fuzzy,
        )
        assert not judge(
            "Circuit de Monaco is located in southeast asia", fuzzy
        )

    def test_currency(self, fuzzy):
        assert judge("EUR is the currency of Germany", fuzzy)
        assert not judge("CZK is the currency of Germany", fuzzy)

    def test_classic_movie(self, fuzzy):
        assert judge("Casablanca is considered a 'classic'", fuzzy)
        assert not judge(
            "Avengers: Endgame is considered a classic", fuzzy
        )


class TestTextConditions:
    def test_sentiment(self, fuzzy):
        assert judge(
            "The comment 'Excellent answer, wonderful and helpful.' "
            "is positive",
            fuzzy,
        )
        assert judge(
            "The comment 'A terrible, confusing mess.' is negative",
            fuzzy,
        )

    def test_sarcasm(self, fuzzy):
        assert judge(
            "The comment 'Oh great, another broken proof.' is sarcastic",
            fuzzy,
        )
        assert not judge(
            "The comment 'See also the 2009 survey.' is sarcastic",
            fuzzy,
        )

    def test_technicality(self, fuzzy):
        assert judge(
            "The title 'Eigenvalue shrinkage in covariance estimation' "
            "is technical",
            fuzzy,
        )
        assert not judge(
            "The title 'What is your favorite statistics joke?' "
            "is technical",
            fuzzy,
        )

    def test_boundary_judgments_are_seeded_and_stable(self, fuzzy):
        condition = (
            "The comment 'sweet but slow; fine I suppose' is positive"
        )
        first = judge(condition, fuzzy, seed=7)
        again = judge(condition, fuzzy, seed=7)
        assert first == again


class TestGradedJudgments:
    def test_score_recognises_criteria(self):
        technical = concepts.score(
            "most technical",
            "Eigenvalue shrinkage in covariance estimation",
            seed=0,
        )
        joke = concepts.score(
            "most technical", "What is your favorite joke?", seed=0
        )
        assert technical > joke

    def test_score_deterministic(self):
        a = concepts.score("most sarcastic", "Oh great.", seed=1)
        b = concepts.score("most sarcastic", "Oh great.", seed=1)
        assert a == b

    def test_compare_consistent_on_large_gaps(self):
        left = "Eigenvalue shrinkage in high-dimensional covariance"
        right = "Weekend reading suggestions, nothing too heavy"
        assert concepts.compare("most technical", left, right, seed=0)
        assert not concepts.compare("most technical", right, left, seed=0)

    def test_compare_antisymmetric_everywhere(self):
        # Even coin-flip ties must be antisymmetric: exactly one of
        # (A beats B), (B beats A) holds.
        items = [
            "How do I get started with data analysis?",
            "Is statistics a good career path?",
        ]
        forward = concepts.compare("most technical", items[0], items[1], 0)
        backward = concepts.compare("most technical", items[1], items[0], 0)
        assert forward != backward

    def test_relevance_favours_overlap(self):
        query = "races held on Sepang International Circuit"
        near = concepts.relevance(
            query, "name: Sepang International Circuit", seed=0
        )
        far = concepts.relevance(query, "name: Hungaroring", seed=0)
        assert near > far

    def test_relevance_bounded(self):
        value = concepts.relevance("a", "b", seed=0)
        assert 0.0 <= value <= 1.0


class TestNoisyThreshold:
    def test_outside_band_deterministic(self):
        assert concepts.noisy_threshold(0.9, 0.5, 0.1, 0, "k")
        assert not concepts.noisy_threshold(0.1, 0.5, 0.1, 0, "k")

    def test_inside_band_varies_with_seed(self):
        outcomes = {
            concepts.noisy_threshold(0.5, 0.5, 0.1, seed, "k")
            for seed in range(30)
        }
        assert outcomes == {True, False}
