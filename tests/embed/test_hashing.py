"""Unit tests for the hashing embedder."""

import numpy as np
import pytest

from repro.embed import HashingEmbedder, serialize_row


@pytest.fixture()
def embedder() -> HashingEmbedder:
    return HashingEmbedder(dimensions=128)


class TestEmbedder:
    def test_unit_norm(self, embedder):
        vector = embedder.embed("hello world of data")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self, embedder):
        assert np.linalg.norm(embedder.embed("")) == 0.0

    def test_deterministic(self, embedder):
        a = embedder.embed("gradient descent")
        b = embedder.embed("gradient descent")
        assert np.array_equal(a, b)

    def test_similar_texts_closer_than_dissimilar(self, embedder):
        query = embedder.embed("races on Sepang International Circuit")
        near = embedder.embed("Sepang International Circuit Malaysia")
        far = embedder.embed("free meal count for elementary schools")
        assert float(query @ near) > float(query @ far)

    def test_batch_shape(self, embedder):
        matrix = embedder.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 128)

    def test_empty_batch(self, embedder):
        assert embedder.embed_batch([]).shape == (0, 128)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimensions=4)

    def test_trigrams_optional(self):
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        vector = plain.embed("abc")
        assert np.linalg.norm(vector) == pytest.approx(1.0)


class TestSerializeRow:
    def test_paper_format(self):
        record = {"School": "A High", "AvgScrMath": 600}
        assert serialize_row(record) == (
            "- School: A High\n- AvgScrMath: 600"
        )
