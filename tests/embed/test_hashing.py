"""Unit tests for the hashing embedder."""

import numpy as np
import pytest

from repro.embed import HashingEmbedder, serialize_row


@pytest.fixture()
def embedder() -> HashingEmbedder:
    return HashingEmbedder(dimensions=128)


class TestEmbedder:
    def test_unit_norm(self, embedder):
        vector = embedder.embed("hello world of data")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_deterministic(self, embedder):
        a = embedder.embed("gradient descent")
        b = embedder.embed("gradient descent")
        assert np.array_equal(a, b)

    def test_similar_texts_closer_than_dissimilar(self, embedder):
        query = embedder.embed("races on Sepang International Circuit")
        near = embedder.embed("Sepang International Circuit Malaysia")
        far = embedder.embed("free meal count for elementary schools")
        assert float(query @ near) > float(query @ far)

    def test_batch_shape(self, embedder):
        matrix = embedder.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 128)

    def test_empty_batch(self, embedder):
        assert embedder.embed_batch([]).shape == (0, 128)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimensions=4)

    def test_trigrams_optional(self):
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        vector = plain.embed("abc")
        assert np.linalg.norm(vector) == pytest.approx(1.0)


class TestDegenerateTextContract:
    """Regression tests for the all-zero-embedding bug.

    ``embed`` used to return the zero vector for texts contributing no
    features, making cosine similarity against them ill-defined (inner
    product 0 against everything).  The contract now: every embedding
    is unit-norm; feature-less texts share one sentinel bucket; callers
    that must not conflate degenerate texts ask :meth:`is_degenerate`.
    """

    def test_empty_text_embeds_unit_norm(self, embedder):
        # Pre-fix this was the zero vector (norm 0.0).
        assert np.linalg.norm(embedder.embed("")) == pytest.approx(1.0)

    def test_featureless_text_embeds_unit_norm(self):
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        for text in ["", "?!...", "   "]:
            assert np.linalg.norm(plain.embed(text)) == pytest.approx(
                1.0
            ), repr(text)

    def test_degenerate_texts_share_the_sentinel(self):
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        empty = plain.embed("")
        punct = plain.embed("?!")
        assert np.array_equal(empty, punct)

    def test_sentinel_near_orthogonal_to_content(self, embedder):
        sentinel = embedder.embed("")
        content = embedder.embed("top romance movies by revenue")
        assert abs(float(sentinel @ content)) < 0.5

    def test_is_degenerate(self):
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        assert plain.is_degenerate("")
        assert plain.is_degenerate("?!...")
        assert not plain.is_degenerate("movies")
        # With trigrams on, any non-empty text contributes features.
        tri = HashingEmbedder(dimensions=64, use_trigrams=True)
        assert tri.is_degenerate("")
        assert not tri.is_degenerate("?!")

    def test_empty_text_no_longer_matches_nothing(self):
        """The observable bug: a zero query vector scored 0 against
        every index entry, so ``search`` ranked arbitrarily."""
        plain = HashingEmbedder(dimensions=64, use_trigrams=False)
        query = plain.embed("")
        stored = plain.embed_batch(["", "alpha beta", "gamma delta"])
        scores = stored @ query
        # The degenerate entry now outranks real content for a
        # degenerate query instead of tying everything at 0.
        assert scores[0] == pytest.approx(1.0)
        assert scores[0] > max(abs(scores[1]), abs(scores[2]))


class TestSerializeRow:
    def test_paper_format(self):
        record = {"School": "A High", "AvgScrMath": 600}
        assert serialize_row(record) == (
            "- School: A High\n- AvgScrMath: 600"
        )
