"""Unit tests for the text-analysis primitives."""

import pytest

from repro.text import (
    jaccard_similarity,
    sarcasm_score,
    sentences,
    sentiment_score,
    summarize,
    technicality_score,
    tokens,
)
from repro.text.similarity import cosine_similarity, tf_idf_vectors
from repro.text.summarize import summarize_items
from repro.text.tokenize import content_tokens


class TestTokenize:
    def test_basic_tokens(self):
        assert tokens("Hello, World!") == ["hello", "world"]

    def test_keeps_numbers_and_hyphens(self):
        assert tokens("top-3 of 2.5") == ["top-3", "of", "2.5"]

    def test_case_preserved_when_asked(self):
        assert tokens("Ada", lowercase=False) == ["Ada"]

    def test_content_tokens_drop_stopwords(self):
        assert content_tokens("the cat and the hat") == ["cat", "hat"]

    def test_sentences(self):
        assert sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_sentences_empty(self):
        assert sentences("   ") == []


class TestSentiment:
    def test_positive(self):
        assert sentiment_score("an excellent, wonderful answer") > 0.2

    def test_negative(self):
        assert sentiment_score("a terrible, confusing mess") < -0.2

    def test_negation_flips(self):
        positive = sentiment_score("this is good")
        negated = sentiment_score("this is not good")
        assert positive > 0
        assert negated < 0

    def test_intensifier_strengthens(self):
        assert sentiment_score("extremely good") > sentiment_score(
            "somewhat good"
        )

    def test_neutral_text_is_near_zero(self):
        # Neutral text carries only the deterministic tiebreak epsilon.
        assert abs(sentiment_score("the file is on the table")) < 1e-3

    def test_empty(self):
        assert sentiment_score("") == 0.0

    def test_bounded(self):
        text = "amazing " * 50
        assert -1.0 <= sentiment_score(text) <= 1.0


class TestSarcasm:
    def test_marker_phrases_score_high(self):
        assert sarcasm_score("Oh great, another broken build.") > 0.4

    def test_mock_praise_detected(self):
        score = sarcasm_score(
            "Brilliant plan, the whole thing is a miserable failure."
        )
        assert score > 0.4

    def test_plain_praise_scores_low(self):
        assert sarcasm_score("This is a clear and helpful answer.") < 0.3

    def test_neutral_scores_near_zero(self):
        assert sarcasm_score("See section 4 of the textbook.") < 0.2

    def test_bounded(self):
        text = "Oh great, yeah right, as if! " * 10
        assert sarcasm_score(text) <= 1.0 + 1e-3


class TestTechnicality:
    def test_jargon_scores_high(self):
        high = technicality_score(
            "Bayesian regularization of the covariance eigenvalue spectrum"
        )
        low = technicality_score("What is your favorite statistics joke?")
        assert high > 0.4
        assert low < 0.2
        assert high > low

    def test_acronyms_and_symbols_contribute(self):
        with_features = technicality_score("SGD with lr=0.1 and L2")
        without = technicality_score("walking in the park today")
        assert with_features > without

    def test_empty(self):
        assert technicality_score("") == 0.0

    def test_ordering_matches_intuition_on_pool(self):
        from repro.data.codebase_community import POST_TITLES

        first_five = [technicality_score(t) for t in POST_TITLES[:5]]
        last_five = [technicality_score(t) for t in POST_TITLES[-5:]]
        assert min(first_five) > max(last_five)


class TestSummarize:
    def test_short_text_returned_whole(self):
        text = "One sentence. Two sentence."
        assert summarize(text, max_sentences=4) == text

    def test_caps_sentence_count(self):
        text = " ".join(f"Sentence number {i} talks about data." for i in range(12))
        summary = summarize(text, max_sentences=3)
        assert summary.count(".") <= 3

    def test_extractive_faithfulness(self):
        text = (
            "The model overfits badly. Regularization helps the model. "
            "The model and data interact. Unrelated trivia here. "
            "More model discussion follows."
        )
        summary = summarize(text, max_sentences=2)
        for sentence in summary.split(". "):
            if sentence:
                assert sentence.rstrip(".") in text

    def test_summarize_items_joins_fragments(self):
        summary = summarize_items(["no punctuation", "also none"])
        assert "no punctuation." in summary


class TestSimilarity:
    def test_jaccard_identity_and_disjoint(self):
        assert jaccard_similarity("alpha beta", "alpha beta") == 1.0
        assert jaccard_similarity("alpha", "gamma") == 0.0

    def test_jaccard_empty(self):
        assert jaccard_similarity("", "") == 0.0

    def test_tfidf_cosine_favours_overlap(self):
        docs = [
            "gradient descent converges quickly",
            "gradient descent diverges sometimes",
            "cats eat fish",
        ]
        vectors = tf_idf_vectors(docs)
        close = cosine_similarity(vectors[0], vectors[1])
        far = cosine_similarity(vectors[0], vectors[2])
        assert close > far

    def test_cosine_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0
