"""Tests for the dynamic race checker (repro.obs.racecheck)."""

from __future__ import annotations

import threading

from repro.obs import racecheck
from repro.obs.metrics import MetricsRegistry
from repro.obs.racecheck import RaceChecker, RaceFinding


def _spawn(name: str, target) -> threading.Thread:
    """Fork-annotated named thread (the checker keys on thread names)."""
    thread = threading.Thread(target=target, name=name)
    racecheck.fork(name)
    thread.start()
    return thread


def _reap(thread: threading.Thread) -> None:
    thread.join()
    racecheck.join(thread.name)


def _run_unguarded_counter() -> str:
    """Two threads bump a shared counter with no lock: the seeded race."""
    checker = RaceChecker()
    with racecheck.checking(checker):
        counter = {"n": 0}

        def bump() -> None:
            for _ in range(50):
                racecheck.read("fixture.counter")
                value = counter["n"]
                racecheck.write("fixture.counter")
                counter["n"] = value + 1

        workers = [_spawn(f"bumper-{i}", bump) for i in range(2)]
        for worker in workers:
            _reap(worker)
    return checker.report().render()


class TestSeededRaces:
    def test_unguarded_counter_detected(self):
        rendered = _run_unguarded_counter()
        assert "RACY" in rendered
        assert "race: fixture.counter [bumper-0, bumper-1]" in rendered
        assert "empty lockset intersection" in rendered

    def test_unguarded_counter_deterministic_across_runs(self):
        # Schedule-insensitive: no ordering edges and no common lock on
        # any interleaving, so the report bytes never vary.
        assert _run_unguarded_counter() == _run_unguarded_counter()

    def test_guarded_counter_clean(self):
        checker = RaceChecker()
        with racecheck.checking(checker):
            lock = threading.Lock()
            counter = {"n": 0}

            def bump() -> None:
                for _ in range(50):
                    with racecheck.guard("fixture.lock", lock):
                        racecheck.write("fixture.counter")
                        counter["n"] += 1

            workers = [_spawn(f"bumper-{i}", bump) for i in range(4)]
            for worker in workers:
                _reap(worker)
        report = checker.report()
        assert report.ok, report.render()
        assert report.threads == 5  # main + 4 workers
        assert report.variables == 1

    def test_lock_order_inversion_detected(self):
        # The two threads run sequentially, so no actual deadlock — the
        # checker still sees the conflicting acquisition orders.
        checker = RaceChecker()
        with racecheck.checking(checker):
            lock_a, lock_b = threading.Lock(), threading.Lock()

            def forward() -> None:
                with racecheck.guard("fixture.a", lock_a):
                    with racecheck.guard("fixture.b", lock_b):
                        pass

            def backward() -> None:
                with racecheck.guard("fixture.b", lock_b):
                    with racecheck.guard("fixture.a", lock_a):
                        pass

            first = _spawn("order-1", forward)
            _reap(first)
            second = _spawn("order-2", backward)
            _reap(second)
        report = checker.report()
        assert [f.kind for f in report.findings] == ["lock-order"]
        assert report.findings[0].variable == (
            "fixture.a -> fixture.b -> fixture.a"
        )
        assert "potential deadlock" in report.findings[0].message


class TestHappensBefore:
    def test_fork_join_handoff_is_ordered(self):
        # Parent writes, child writes, parent reads after join — no
        # locks anywhere, yet every pair is ordered by fork/join.
        checker = RaceChecker()
        with racecheck.checking(checker):
            box = {"v": 0}

            racecheck.write("fixture.box")
            box["v"] = 1

            def child() -> None:
                racecheck.write("fixture.box")
                box["v"] = 2

            worker = _spawn("hand-off", child)
            _reap(worker)
            racecheck.read("fixture.box")
            assert box["v"] == 2
        assert checker.report().ok

    def test_missing_fork_edge_is_a_race(self):
        # Same handoff but without fork/join annotations: the parent's
        # write and the child's write are unordered.
        checker = RaceChecker()
        with racecheck.checking(checker):
            racecheck.write("fixture.box")

            def child() -> None:
                racecheck.write("fixture.box")

            worker = threading.Thread(target=child, name="stray")
            worker.start()
            worker.join()
        report = checker.report()
        assert not report.ok
        assert report.findings[0].variable == "fixture.box"

    def test_lock_release_acquire_orders_unlocked_reads(self):
        # Thread A publishes under a lock; after A is done, thread B
        # takes the lock once and then reads *outside* it.  The
        # release->acquire edge makes the unlocked read safe — the
        # pattern the server uses for session.consumed_seconds.
        checker = RaceChecker()
        with racecheck.checking(checker):
            lock = threading.Lock()

            def publisher() -> None:
                with racecheck.guard("fixture.lock", lock):
                    racecheck.write("fixture.value")

            def consumer() -> None:
                with racecheck.guard("fixture.lock", lock):
                    pass
                racecheck.read("fixture.value")

            first = _spawn("pub", publisher)
            first.join()  # deliberately no racecheck.join: lock edge only
            second = _spawn("sub", consumer)
            _reap(second)
        assert checker.report().ok

    def test_wait_edge_orders_condition_handoff(self):
        # Model of BatchingLM: a waiter blocks on a condition, a flusher
        # writes under the cv and notifies; the waiter then reads the
        # written state outside the cv.  releasing()/reacquired() carry
        # the edge through Condition.wait's invisible release/acquire.
        checker = RaceChecker()
        with racecheck.checking(checker):
            cv = threading.Condition()
            done = {"flag": False}

            def waiter() -> None:
                with racecheck.guard("fixture.cv", cv):
                    while not done["flag"]:
                        racecheck.releasing("fixture.cv")
                        cv.wait()
                        racecheck.reacquired("fixture.cv")
                racecheck.read("fixture.payload")

            def flusher() -> None:
                with racecheck.guard("fixture.cv", cv):
                    racecheck.write("fixture.payload")
                    done["flag"] = True
                    cv.notify_all()

            blocked = _spawn("waiter", waiter)
            poker = _spawn("flusher", flusher)
            _reap(poker)
            _reap(blocked)
        assert checker.report().ok, checker.report().render()


class TestReporting:
    def test_report_is_sorted_and_stable(self):
        checker = RaceChecker()
        with racecheck.checking(checker):
            def touch() -> None:
                racecheck.write("fixture.zeta")
                racecheck.write("fixture.alpha")

            racecheck.write("fixture.zeta")
            racecheck.write("fixture.alpha")
            worker = threading.Thread(target=touch, name="stray")
            worker.start()
            worker.join()
        report = checker.report()
        assert [f.variable for f in report.findings] == [
            "fixture.alpha",
            "fixture.zeta",
        ]
        assert report.render() == checker.report().render()

    def test_duplicate_races_collapse(self):
        checker = RaceChecker()
        with racecheck.checking(checker):
            def hammer() -> None:
                for _ in range(25):
                    racecheck.write("fixture.hot")

            racecheck.write("fixture.hot")
            worker = threading.Thread(target=hammer, name="stray")
            worker.start()
            worker.join()
        report = checker.report()
        assert len(report.findings) == 1  # one pair, not 25 findings

    def test_finding_render_shape(self):
        finding = RaceFinding(
            kind="race",
            variable="fixture.v",
            threads=("a", "b"),
            message="boom",
        )
        assert finding.render() == "race: fixture.v [a, b] — boom"

    def test_metrics_published_on_report(self):
        registry = MetricsRegistry()
        checker = RaceChecker(metrics=registry)
        with racecheck.checking(checker):
            racecheck.write("fixture.only")
        report = checker.report()
        assert report.ok
        assert registry.counter("repro_conc_events_total").value >= 1
        assert registry.counter("repro_conc_vars_total").value == 1
        assert registry.counter("repro_conc_races_total").value == 0


class TestDisabledPath:
    def test_hooks_are_noops_without_checker(self):
        assert not racecheck.installed()
        racecheck.read("fixture.v")
        racecheck.write("fixture.v")
        racecheck.fork("nobody")
        racecheck.join("nobody")
        racecheck.releasing("fixture.lock")
        racecheck.reacquired("fixture.lock")

    def test_guard_returns_raw_lock_when_disabled(self):
        lock = threading.Lock()
        assert racecheck.guard("fixture.lock", lock) is lock

    def test_checking_scope_restores_previous(self):
        outer, inner = RaceChecker(), RaceChecker()
        with racecheck.checking(outer):
            with racecheck.checking(inner):
                racecheck.write("fixture.inner")
            racecheck.write("fixture.outer")
        assert not racecheck.installed()
        assert "fixture.inner" in inner._vars
        assert "fixture.inner" not in outer._vars
        assert "fixture.outer" in outer._vars

    def test_guard_proxies_lock_when_enabled(self):
        lock = threading.Lock()
        checker = RaceChecker()
        with racecheck.checking(checker):
            with racecheck.guard("fixture.lock", lock):
                assert lock.locked()
            assert not lock.locked()
