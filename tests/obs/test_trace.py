"""Unit tests for repro.obs.trace: spans, contexts, and exporters."""

import json
import threading

from repro.obs import Tracer, to_chrome, to_jsonl, write_trace
from repro.obs import trace


class TestNoActiveContext:
    def test_helpers_are_noops(self):
        assert not trace.active()
        with trace.span("anything"):
            pass  # no context: must not raise or record
        trace.leaf("leaf", 1.0)
        trace.event("event")
        trace.advance(5.0)
        assert not trace.active()

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.request("r", 0):
            assert not trace.active()
            trace.leaf("leaf", 1.0)
        assert tracer.roots == []


class TestSpanRecording:
    def test_request_root_and_nesting(self):
        tracer = Tracer()
        with tracer.request("the request", 3):
            with trace.span("step:execution", note="n"):
                trace.leaf("op", 0.5, rows=2)
            trace.leaf("lm.call", 1.5)
        [(index, root)] = tracer.roots
        assert index == 3
        assert root.name == "request"
        assert root.attrs == {"index": 3, "request": "the request"}
        assert root.duration_s == 2.0
        step, call = root.children
        assert step.name == "step:execution"
        assert step.attrs == {"note": "n"}
        assert step.start_s == 0.0 and step.end_s == 0.5
        assert step.children[0].name == "op"
        assert call.start_s == 0.5 and call.end_s == 2.0

    def test_leaves_lay_out_sequentially(self):
        tracer = Tracer()
        with tracer.request("r", 0):
            trace.leaf("a", 1.0)
            trace.leaf("b", 2.0)
        [(_, root)] = tracer.roots
        a, b = root.children
        assert (a.start_s, a.end_s) == (0.0, 1.0)
        assert (b.start_s, b.end_s) == (1.0, 3.0)
        assert root.end_s == 3.0

    def test_events_attach_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.request("r", 0):
            with trace.span("outer"):
                trace.leaf("work", 1.0)
                trace.event("breaker.trip", state="open")
        [(_, root)] = tracer.roots
        outer = root.children[0]
        [happened] = outer.events
        assert happened.name == "breaker.trip"
        assert happened.at_s == 1.0
        assert happened.attrs == {"state": "open"}

    def test_advance_moves_cursor_inside_open_span(self):
        tracer = Tracer()
        with tracer.request("r", 0):
            with trace.span("op"):
                trace.advance(0.25)
        [(_, root)] = tracer.roots
        assert root.children[0].duration_s == 0.25

    def test_suspended_hides_context(self):
        tracer = Tracer()
        with tracer.request("r", 0):
            with trace.suspended():
                assert not trace.active()
                trace.leaf("hidden", 9.0)
            assert trace.active()
        [(_, root)] = tracer.roots
        assert root.children == []
        assert root.end_s == 0.0

    def test_walk_is_depth_first_preorder(self):
        tracer = Tracer()
        with tracer.request("r", 0):
            with trace.span("a"):
                trace.leaf("a1")
            trace.leaf("b")
        [(_, root)] = tracer.roots
        assert [s.name for s in root.walk()] == ["request", "a", "a1", "b"]

    def test_roots_sorted_by_request_index(self):
        tracer = Tracer()
        for index in (2, 0, 1):
            with tracer.request(f"r{index}", index):
                trace.leaf("work", float(index))
        assert [index for index, _ in tracer.roots] == [0, 1, 2]
        tracer.clear()
        assert tracer.roots == []

    def test_contexts_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["active"] = trace.active()

        with tracer.request("r", 0):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["active"] is False


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        with tracer.request("question", 0):
            with trace.span("step:execution"):
                trace.leaf("op:Scan", 0.001, rows_out=5)
            trace.event("note", detail=1)
        return tracer

    def test_jsonl_one_record_per_span(self):
        lines = to_jsonl(self._tracer()).splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == [
            "request",
            "step:execution",
            "op:Scan",
        ]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]
        assert records[2]["parent"] == records[1]["id"]
        assert records[2]["attrs"] == {"rows_out": 5}
        assert records[0]["events"][0]["name"] == "note"

    def test_chrome_document_shape(self):
        document = json.loads(to_chrome(self._tracer()))
        assert document["displayTimeUnit"] == "ms"
        spans = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        instants = [
            e for e in document["traceEvents"] if e["ph"] == "i"
        ]
        assert [s["name"] for s in spans] == [
            "request",
            "step:execution",
            "op:Scan",
        ]
        assert spans[2]["dur"] == 1000  # 0.001 s -> 1000 us
        assert [i["name"] for i in instants] == ["note"]
        assert all(e["tid"] == 0 for e in document["traceEvents"])

    def test_empty_tracer_exports(self):
        tracer = Tracer()
        assert to_jsonl(tracer) == ""
        assert json.loads(to_chrome(tracer)) == {
            "displayTimeUnit": "ms",
            "traceEvents": [],
        }

    def test_write_trace_formats(self, tmp_path):
        tracer = self._tracer()
        chrome = write_trace(tracer, tmp_path / "t.json")
        jsonl = write_trace(
            tracer, tmp_path / "t.jsonl", format="jsonl"
        )
        assert json.loads(chrome.read_text())["traceEvents"]
        assert len(jsonl.read_text().splitlines()) == 3

    def test_write_trace_rejects_unknown_format(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            write_trace(Tracer(), tmp_path / "t.bin", format="binary")
