"""EXPLAIN ANALYZE: operator counters, virtual time, golden renders.

The golden outputs pin the full annotated plan text for two TAG-style
queries — the serving demo's romance lookup and a join/aggregate over
the california_schools domain.  Any change to planning, operator
naming, row accounting, or the cost model shows up as a readable diff
here.
"""

import pytest

from repro.data import load_domain, movies
from repro.db import Database
from repro.errors import PlanningError
from repro.obs import OperatorCostModel, instrument_plan, render_stats

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)

ROMANCE_GOLDEN = """\
Limit(1, offset=0) [rows_in=2 rows_out=1 vtime=0.000103s]
  Slice([0, 1]) [rows_in=2 rows_out=2 vtime=0.000104s]
    Sort(1 key(s)) [rows_in=10 rows_out=2 vtime=0.000112s]
      Project(movie_title, review, revenue) [rows_in=10 rows_out=10 vtime=0.000120s]
        Filter(where) [rows_in=20 rows_out=10 vtime=0.000130s]
          Scan(movies AS movies) [rows_in=0 rows_out=20 vtime=0.000120s]"""

SCHOOLS_SQL = (
    "SELECT s.County, COUNT(*) AS n FROM schools AS s "
    "JOIN satscores AS t ON s.CDSCode = t.cds "
    "GROUP BY s.County ORDER BY n DESC, s.County LIMIT 3"
)

SCHOOLS_GOLDEN = """\
Limit(3, offset=0) [rows_in=4 rows_out=3 vtime=0.000107s]
  Sort(2 key(s)) [rows_in=24 rows_out=4 vtime=0.000128s]
    Project(County, n) [rows_in=24 rows_out=24 vtime=0.000148s]
      Aggregate(groups=1, calls=[COUNT]) [rows_in=150 rows_out=24 vtime=0.000274s]
        HashJoin(INNER, 1 key(s)) [rows_in=400 rows_out=150 vtime=0.000650s]
          Scan(schools AS s) [rows_in=0 rows_out=250 vtime=0.000350s]
          Scan(satscores AS t) [rows_in=0 rows_out=150 vtime=0.000250s]"""


@pytest.fixture(scope="module")
def movie_db():
    return movies.build().db


@pytest.fixture(scope="module")
def schools_db():
    return load_domain("california_schools", seed=0).db


class TestGoldenPlans:
    def test_romance_query_golden(self, movie_db):
        analyzed = movie_db.explain_analyze(ROMANCE_SQL)
        assert analyzed.render() == ROMANCE_GOLDEN

    def test_schools_join_aggregate_golden(self, schools_db):
        analyzed = schools_db.explain_analyze(SCHOOLS_SQL)
        assert analyzed.render() == SCHOOLS_GOLDEN

    def test_render_matches_sql_prefix_form(self, movie_db):
        """``EXPLAIN ANALYZE <q>`` via execute() is the same render."""
        result = movie_db.execute(f"EXPLAIN ANALYZE {ROMANCE_SQL}")
        assert result.columns == ["plan"]
        assert [row[0] for row in result.rows] == (
            ROMANCE_GOLDEN.splitlines()
        )

    def test_prefix_is_case_insensitive(self, movie_db):
        result = movie_db.execute(f"explain analyze {ROMANCE_SQL}")
        assert result.columns == ["plan"]


class TestAnalyzedQuery:
    def test_result_rows_match_plain_execution(self, movie_db):
        analyzed = movie_db.explain_analyze(ROMANCE_SQL)
        plain = movie_db.execute(ROMANCE_SQL)
        assert analyzed.result.columns == plain.columns
        assert analyzed.result.rows == plain.rows

    def test_rows_in_sums_children(self, schools_db):
        analyzed = schools_db.explain_analyze(SCHOOLS_SQL)
        for stats in analyzed.stats.walk():
            assert stats.rows_in == sum(
                child.rows_out for child in stats.children
            )

    def test_limit_early_exit_is_honest(self, movie_db):
        """A LIMIT that stops pulling shows up in child rows_out: the
        Sort fed the Limit only the rows it actually demanded."""
        analyzed = movie_db.explain_analyze(ROMANCE_SQL)
        limit = analyzed.stats
        assert limit.describe.startswith("Limit")
        assert limit.rows_out == 1
        [slice_stats] = limit.children
        assert slice_stats.rows_out < 10  # 10 romance rows exist

    def test_total_seconds_sums_exclusive_costs(self, movie_db):
        analyzed = movie_db.explain_analyze(ROMANCE_SQL)
        assert analyzed.total_seconds == pytest.approx(
            sum(
                analyzed.cost.seconds(stats)
                for stats in analyzed.stats.walk()
            )
        )
        assert analyzed.total_seconds > 0.0

    def test_deterministic_across_runs(self, schools_db):
        first = schools_db.explain_analyze(SCHOOLS_SQL).render()
        second = schools_db.explain_analyze(SCHOOLS_SQL).render()
        assert first == second

    def test_rejects_non_select(self, movie_db):
        with pytest.raises(PlanningError):
            movie_db.explain_analyze("DELETE FROM movies WHERE 1 = 1")


class TestInstrumentation:
    def test_instrument_plan_counts_without_changing_rows(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t (x) VALUES (3), (1), (2)")
        from repro.db.planner import Planner
        from repro.db.sql.parser import parse_statement

        statement = parse_statement("SELECT x FROM t ORDER BY x")
        plan, names = Planner(db, db.functions).plan_select(statement)
        proxy, stats = instrument_plan(plan)
        rows = list(proxy.execute())
        assert rows == [(1,), (2,), (3,)]
        assert stats.rows_out == 3

    def test_custom_cost_model(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t (x) VALUES (1), (2)")
        analyzed = db.explain_analyze("SELECT x FROM t")
        expensive = OperatorCostModel(
            startup_s=1.0, per_row_in_s=0.0, per_row_out_s=0.0
        )
        rendered = render_stats(analyzed.stats, expensive)
        assert all(
            "vtime=1.000000s" in line for line in rendered.splitlines()
        )
