"""Exact LM-UDF counters: Usage fields, metrics, per-node EXPLAIN stats.

These tests pin the full accounting contract of the batched UDF path
for a golden query: ``udf_cache_misses == lm_calls`` (each miss is a
dispatched invocation), ``udf_cache_hits`` counts row-occurrences
served without an invocation (intra-morsel dedup, statement memo, or
the cross-statement LRU), and every number is mirrored identically to
the bound :class:`~repro.lm.usage.Usage`, the
:class:`~repro.obs.metrics.MetricsRegistry`, and the owning plan
node's EXPLAIN ANALYZE line.
"""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.lm import SimulatedLM, Usage, register_llm_judge
from repro.obs.metrics import MetricsRegistry

#: Duplicate-heavy golden data: 8 rows, 3 distinct judged values.
ROWS = [
    ("thriller", 1),
    ("comedy", 2),
    ("thriller", 3),
    ("romance", 4),
    ("comedy", 5),
    ("thriller", 6),
    ("romance", 7),
    ("comedy", 8),
]

GOLDEN_SQL = "SELECT s, SLOW(s) AS j FROM t WHERE SLOW(s) <> 'X' ORDER BY n"

GOLDEN_ANALYZE = """\
Slice([0, 1]) [rows_in=8 rows_out=8 vtime=0.000116s]
  Sort(1 key(s)) [rows_in=8 rows_out=8 vtime=0.000116s]
    BatchedProject(s, j, n, batch=4, sites=1) [rows_in=8 rows_out=8 vtime=0.000116s lm_calls=0 lm_batches=0 udf_cache_hits=8 udf_cache_misses=0]
      BatchedFilter(where[expensive], batch=4, sites=1) [rows_in=8 rows_out=8 vtime=0.000116s lm_calls=3 lm_batches=1 udf_cache_hits=5 udf_cache_misses=3]
        Scan(t AS t) [rows_in=0 rows_out=8 vtime=0.000108s]
Optimizer:
  route: batched (caller-pinned udf_batch_size=4): est 6 LM calls / 336 tokens (per-row 16 calls / 896 tokens)"""


def build_database() -> tuple[Database, Usage, MetricsRegistry]:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("s", DataType.TEXT),
                Column("n", DataType.INTEGER),
            ],
        )
    )
    db.insert("t", ROWS)
    usage = Usage()
    metrics = MetricsRegistry()

    def scalar(value):
        return str(value).upper()

    def batch(tuples):
        return [str(value).upper() for (value,) in tuples]

    db.register_udf("SLOW", scalar, expensive=True, batch=batch)
    db.bind_udf_meters(usage=usage, metrics=metrics)
    return db, usage, metrics


class TestExactCounters:
    def test_golden_query_counter_contract(self):
        db, usage, metrics = build_database()
        db.execute(GOLDEN_SQL, udf_batch_size=4)
        # 8 rows, 3 distinct values.  The filter's first morsel of 4
        # dispatches 3 distinct tuples (1 intra-morsel duplicate); the
        # second morsel of 4 is fully covered by the statement memo.
        # The projection reuses the same memo for all 8 occurrences.
        assert usage.udf_cache_misses == 3
        assert usage.udf_cache_hits == 13  # (1 + 4) filter + 8 project
        snapshot = metrics.snapshot()
        assert snapshot["repro_udf_cache_misses_total"] == 3
        assert snapshot["repro_udf_cache_hits_total"] == 13

    def test_second_statement_is_all_hits(self):
        db, usage, _ = build_database()
        db.execute(GOLDEN_SQL, udf_batch_size=4)
        misses_after_first = usage.udf_cache_misses
        db.execute(GOLDEN_SQL, udf_batch_size=4)
        assert usage.udf_cache_misses == misses_after_first
        assert usage.udf_cache_hits == 13 + 16  # every occurrence hits

    def test_llm_judge_meters_model_usage(self):
        """The real LM UDF: lm_calls on Usage equals dispatched prompts,
        batches are paid once per morsel dispatch."""
        db = Database()
        db.create_table(TableSchema("t", [Column("s", DataType.TEXT)]))
        db.insert("t", [(s,) for s, _ in ROWS])
        lm = SimulatedLM()
        register_llm_judge(db, lm)
        result = db.execute(
            "SELECT s, LLM('a genre', s) FROM t", udf_batch_size=8
        )
        assert len(result.rows) == 8
        assert lm.usage.calls == 3  # one per distinct genre
        assert lm.usage.batches == 1  # one morsel covers the table
        assert lm.usage.udf_cache_misses == 3
        assert lm.usage.udf_cache_hits == 5

    def test_llm_judge_batched_matches_scalar_oracle(self):
        def run(udf_batch_size):
            db = Database()
            db.create_table(
                TableSchema("t", [Column("s", DataType.TEXT)])
            )
            db.insert("t", [(s,) for s, _ in ROWS])
            lm = SimulatedLM()
            register_llm_judge(db, lm)
            result = db.execute(
                "SELECT s, LLM('a genre', s) FROM t",
                udf_batch_size=udf_batch_size,
            )
            return result.rows, lm.usage.calls

        oracle_rows, oracle_calls = run(None)
        batched_rows, batched_calls = run(8)
        assert batched_rows == oracle_rows
        assert batched_calls < oracle_calls  # 3 distinct vs 8 per-row


class TestGoldenAnalyze:
    def test_golden_render_with_per_node_lm_stats(self):
        db, _, _ = build_database()
        analyzed = db.explain_analyze(GOLDEN_SQL, udf_batch_size=4)
        assert analyzed.render() == GOLDEN_ANALYZE

    def test_render_is_deterministic(self):
        first = build_database()[0]
        second = build_database()[0]
        assert first.explain_analyze(
            GOLDEN_SQL, udf_batch_size=4
        ).render() == second.explain_analyze(
            GOLDEN_SQL, udf_batch_size=4
        ).render()

    def test_per_node_stats_sum_to_usage(self):
        db, usage, _ = build_database()
        analyzed = db.explain_analyze(GOLDEN_SQL, udf_batch_size=4)
        hits = sum(
            stats.extra.get("udf_cache_hits", 0)
            for stats in analyzed.stats.walk()
        )
        misses = sum(
            stats.extra.get("udf_cache_misses", 0)
            for stats in analyzed.stats.walk()
        )
        assert hits == usage.udf_cache_hits
        assert misses == usage.udf_cache_misses

    def test_per_row_pinned_plan_has_no_batched_stats(self):
        # udf_batch_size=None pins the per-row oracle path: no batched
        # operators, so no per-node LM counters — but the optimizer
        # still footers the (pinned) route decision.
        db, _, _ = build_database()
        analyzed = db.explain_analyze(GOLDEN_SQL, udf_batch_size=None)
        rendered = analyzed.render()
        assert "lm_calls" not in rendered
        assert "BatchedFilter" not in rendered
        assert "route: per-row (caller-pinned udf_batch_size=None)" in (
            rendered
        )

    def test_results_match_between_analyze_and_execute(self):
        db, _, _ = build_database()
        analyzed = db.explain_analyze(GOLDEN_SQL, udf_batch_size=4)
        plain = build_database()[0].execute(GOLDEN_SQL)
        assert analyzed.result.rows == plain.rows
        assert analyzed.result.columns == plain.columns


class TestUsageFields:
    def test_usage_udf_fields_default_zero(self):
        usage = Usage()
        assert usage.udf_cache_hits == 0
        assert usage.udf_cache_misses == 0

    def test_metrics_stay_silent_without_binding(self):
        db, _, _ = build_database()
        fresh = MetricsRegistry()
        db.execute(GOLDEN_SQL, udf_batch_size=4)
        assert "repro_udf_cache_hits_total" not in fresh.snapshot()

    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_miss_count_is_batch_size_invariant(self, batch_size):
        """Misses = distinct tuples regardless of morsel geometry."""
        db, usage, _ = build_database()
        db.execute(GOLDEN_SQL, udf_batch_size=batch_size)
        assert usage.udf_cache_misses == 3
