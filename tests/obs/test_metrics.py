"""Unit tests for repro.obs.metrics."""

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc()
        assert registry.counter("c").value == 2


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_bucketing(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == 102.0
        assert snapshot["buckets"] == {"1": 2, "2": 1, "+Inf": 1}

    def test_default_bounds(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bounds == DEFAULT_BUCKETS

    def test_rejects_bad_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=())
        with pytest.raises(ValueError):
            registry.histogram("h2", bounds=(2.0, 1.0))

    def test_sum_is_permutation_invariant(self):
        """fsum makes the scraped sum independent of observe order."""
        values = [0.1] * 10 + [1e16, 1.0, -1e16]
        forward = MetricsRegistry().histogram("h")
        backward = MetricsRegistry().histogram("h")
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.snapshot()["sum"] == backward.snapshot()["sum"]


class TestRegistry:
    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("z.gauge").set(3.0)
        registry.counter("a.counter").inc(2)
        registry.histogram("m.hist", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.counter", "m.hist", "z.gauge"]
        assert snapshot["a.counter"] == 2
        assert snapshot["z.gauge"] == 3.0
        assert snapshot["m.hist"]["buckets"] == {"1": 1, "+Inf": 0}

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
