"""Trace determinism: identical bytes across runs AND worker counts.

The tentpole contract of :mod:`repro.obs`: span durations are pure
functions of each request's own work (token counts, row counts, fault
plans), never of batch composition or thread scheduling, so the
exported artifact is byte-identical for ``workers=1`` and
``workers=8``.  Requests here use distinct prompts with the cache off —
cross-request cache interactions (hit vs. coalesced) legitimately
depend on which requests are in flight together, which *is* a function
of the worker count.
"""

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import FaultPlan, LMConfig, SimulatedLM
from repro.obs import Tracer, to_chrome, to_jsonl
from repro.serve import TagServer
from repro.serve.resilience import ResiliencePolicy, RetryPolicy

ROMANCE_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


@pytest.fixture(scope="module")
def movie_dataset():
    return movies.build()


def _serve(dataset, workers, fault_rate=0.0, metrics=None):
    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(ROMANCE_SQL),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    tracer = Tracer()
    server = TagServer(
        factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=4,
        fault_plan=(
            FaultPlan.uniform(fault_rate, seed=0)
            if fault_rate
            else None
        ),
        resilience=(
            ResiliencePolicy(retry=RetryPolicy(max_attempts=4))
            if fault_rate
            else None
        ),
        tracer=tracer,
        metrics=metrics,
    )
    report = server.serve(
        [
            f"Summarize the reviews of the top romance movie (#{index})"
            for index in range(8)
        ]
    )
    return tracer, report


class TestWorkerCountInvariance:
    def test_chrome_bytes_identical_workers_1_vs_8(self, movie_dataset):
        tracer_1, _ = _serve(movie_dataset, workers=1)
        tracer_8, _ = _serve(movie_dataset, workers=8)
        assert to_chrome(tracer_1) == to_chrome(tracer_8)

    def test_jsonl_bytes_identical_workers_1_vs_8(self, movie_dataset):
        tracer_1, _ = _serve(movie_dataset, workers=1)
        tracer_8, _ = _serve(movie_dataset, workers=8)
        assert to_jsonl(tracer_1) == to_jsonl(tracer_8)

    def test_invariant_under_rate_based_faults(self, movie_dataset):
        """Rate faults draw from pure (prompt, attempt) hashes, so the
        retry spans they cause are worker-count invariant too."""
        tracer_1, report_1 = _serve(movie_dataset, 1, fault_rate=0.3)
        tracer_8, report_8 = _serve(movie_dataset, 8, fault_rate=0.3)
        assert report_1.usage.faults_injected > 0
        assert report_1.usage.retries == report_8.usage.retries
        assert to_jsonl(tracer_1) == to_jsonl(tracer_8)

    def test_identical_across_repeat_runs(self, movie_dataset):
        tracer_a, _ = _serve(movie_dataset, workers=3, fault_rate=0.3)
        tracer_b, _ = _serve(movie_dataset, workers=3, fault_rate=0.3)
        assert to_chrome(tracer_a) == to_chrome(tracer_b)


class TestTraceContent:
    def test_every_request_has_a_root(self, movie_dataset):
        tracer, report = _serve(movie_dataset, workers=3)
        assert [index for index, _ in tracer.roots] == list(range(8))
        for result, (_, root) in zip(report.results, tracer.roots):
            assert result.result.trace is root
            assert root.attrs["request"] == result.request

    def test_pipeline_steps_and_operators_present(self, movie_dataset):
        tracer, _ = _serve(movie_dataset, workers=2)
        _, root = tracer.roots[0]
        names = [span.name for span in root.walk()]
        assert "step:synthesis" in names
        assert "step:execution" in names
        assert "step:generation" in names
        assert any(name.startswith("op:Scan") for name in names)
        assert any(name.startswith("op:Limit") for name in names)
        assert "lm.call" in names

    def test_untraced_serving_report_unchanged(self, movie_dataset):
        """Tracing must not perturb the serving numbers it observes."""
        _, traced = _serve(movie_dataset, workers=3, fault_rate=0.3)

        def plain():
            def factory(lm):
                return TAGPipeline(
                    FixedQuerySynthesizer(ROMANCE_SQL),
                    SQLExecutor(movie_dataset.db),
                    SingleCallGenerator(lm, aggregation=True),
                )

            server = TagServer(
                factory,
                SimulatedLM(LMConfig(seed=0)),
                workers=3,
                window=4,
                fault_plan=FaultPlan.uniform(0.3, seed=0),
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=4)
                ),
            )
            return server.serve(
                [
                    "Summarize the reviews of the top romance movie "
                    f"(#{index})"
                    for index in range(8)
                ]
            )

        untraced = plain()
        assert traced.simulated_seconds == untraced.simulated_seconds
        assert traced.usage == untraced.usage
        assert traced.answers() == untraced.answers()


class TestMetricsScrape:
    def test_report_carries_metrics_snapshot(self, movie_dataset):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        _, report = _serve(movie_dataset, workers=3, metrics=registry)
        metrics = report.metrics
        assert metrics["serve.requests"] == 8
        assert metrics["serve.errors"] == 0
        assert metrics["serve.lm.batches"] >= 1
        assert metrics["serve.request.vseconds"]["count"] == 8
        assert metrics["serve.makespan.vseconds"] > 0.0

    def test_metrics_deterministic_across_worker_counts_where_pure(
        self, movie_dataset
    ):
        """Per-request metrics are worker-count invariant; batch-shape
        metrics (batches, sizes) legitimately are not."""
        from repro.obs import MetricsRegistry

        registry_1 = MetricsRegistry()
        registry_8 = MetricsRegistry()
        _, report_1 = _serve(movie_dataset, 1, metrics=registry_1)
        _, report_8 = _serve(movie_dataset, 8, metrics=registry_8)
        assert (
            report_1.metrics["serve.requests"]
            == report_8.metrics["serve.requests"]
        )
        assert (
            report_1.metrics["serve.errors"]
            == report_8.metrics["serve.errors"]
        )

    def test_no_registry_means_empty_metrics(self, movie_dataset):
        _, report = _serve(movie_dataset, workers=2)
        assert report.metrics == {}
