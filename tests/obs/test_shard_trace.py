"""Shard-count trace determinism: identical bytes at any (S, W) cell.

Extends the PR 4 worker-count invariance to the sharded executor: the
exported JSONL and Chrome artifacts, the invariant Usage counters, and
the UDF metrics must be byte-identical for shards in {1, 2, 8} x
workers in {1, 4}.  Two deliberate exclusions (see DESIGN.md §16):
``Usage.batches`` and ``Usage.simulated_seconds`` vary per cell —
coalescing concurrent shards' morsels into bigger flush batches is the
speedup — and per-shard pipeline spans are hidden because the *number*
of shard subtrees depends on the shard count.
"""

from __future__ import annotations

import json

from repro.core import SQLExecutor
from repro.db import Column, Database, DataType, TableSchema
from repro.lm.model import SimulatedLM
from repro.lm.udf import register_llm_judge
from repro.obs import Tracer, to_chrome, to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.serve.batching import BatchingLM

CELLS = [(1, 1), (1, 4), (2, 1), (2, 4), (8, 1), (8, 4)]

SQL = "SELECT s, LLM('a positive review', s) AS judged FROM t ORDER BY n"

INVARIANT_USAGE = (
    "calls",
    "prompt_tokens",
    "output_tokens",
    "cache_hits",
    "cache_misses",
    "udf_cache_hits",
    "udf_cache_misses",
)

INVARIANT_METRICS = (
    "repro_udf_cache_hits_total",
    "repro_udf_cache_misses_total",
    "repro_optimizer_decisions_total",
)


def run_traced(shards: int, workers: int):
    """One traced execution; returns the full determinism fingerprint."""
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("n", DataType.INTEGER),
                Column("s", DataType.TEXT),
            ],
        )
    )
    db.insert("t", [(i, f"review number {i % 11}") for i in range(40)])
    lm = BatchingLM(SimulatedLM())
    register_llm_judge(db, lm)
    metrics = MetricsRegistry()
    db.bind_udf_meters(usage=lm.usage, metrics=metrics)
    db.set_partitioning("t", "n", shards=shards)
    db.configure_sharding(workers=workers, lm=lm)
    tracer = Tracer()
    executor = SQLExecutor(db, udf_batch_size=8)
    with tracer.request("q", 0):
        records = executor.execute(SQL)
    usage = {name: getattr(lm.usage, name) for name in INVARIANT_USAGE}
    counters = {
        name: metrics.counter(name).value for name in INVARIANT_METRICS
    }
    return {
        "jsonl": to_jsonl(tracer),
        "chrome": to_chrome(tracer),
        "usage": usage,
        "metrics": counters,
        "records": records,
    }


class TestShardCountInvariance:
    def test_artifacts_identical_across_all_cells(self):
        baseline = run_traced(*CELLS[0])
        for shards, workers in CELLS[1:]:
            got = run_traced(shards, workers)
            for key in ("jsonl", "chrome", "usage", "metrics", "records"):
                assert got[key] == baseline[key], (key, shards, workers)

    def test_identical_across_repeat_runs(self):
        first = run_traced(8, 4)
        second = run_traced(8, 4)
        assert first == second


class TestSpanContent:
    def test_exchange_and_merge_spans_present(self):
        jsonl = run_traced(8, 4)["jsonl"]
        names = {
            json.loads(line)["name"] for line in jsonl.splitlines()
        }
        assert "op:Exchange" in names
        assert "op:Merge" in names

    def test_no_shard_details_leak_into_spans(self):
        # describe() strings include the shard count and per-shard ids;
        # spans must carry only the stable trace labels.
        jsonl = run_traced(8, 4)["jsonl"]
        assert "ShardScan" not in jsonl
        assert "shard=" not in jsonl
        assert "shards=" not in jsonl

    def test_no_lm_call_spans_from_shard_threads(self):
        # Shard threads run with no trace context, so per-delivery
        # ``lm.call`` leafs never appear under sharded execution — at
        # *any* cell (shard 0 of a 1-shard plan is still a spawned
        # thread).  Call attribution lives in Usage and the op: spans.
        for cell in ((1, 1), (8, 4)):
            jsonl = run_traced(*cell)["jsonl"]
            names = {
                json.loads(line)["name"] for line in jsonl.splitlines()
            }
            assert "lm.call" not in names
