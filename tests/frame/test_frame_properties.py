"""Property-based tests for the DataFrame substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame, merge

values = st.one_of(st.none(), st.integers(-10, 10))


@st.composite
def frames(draw):
    length = draw(st.integers(0, 20))
    return DataFrame(
        {
            "k": [draw(values) for _ in range(length)],
            "v": [draw(values) for _ in range(length)],
        }
    )


class TestFilterProperties:
    @given(frames(), st.integers(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_mask_partition(self, frame, threshold):
        above = frame[frame["v"] > threshold]
        not_above = frame[~(frame["v"] > threshold)]
        assert len(above) + len(not_above) == len(frame)

    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_filter_subset_of_rows(self, frame):
        kept = frame[frame["v"] > 0]
        original_rows = frame.to_records()
        for record in kept.to_records():
            assert record in original_rows


class TestSortProperties:
    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_sort_is_permutation(self, frame):
        ordered = frame.sort_values("v")
        assert sorted(
            map(repr, ordered["v"].tolist())
        ) == sorted(map(repr, frame["v"].tolist()))

    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_sort_monotone_on_non_null(self, frame):
        ordered = [
            value
            for value in frame.sort_values("v")["v"].tolist()
            if value is not None
        ]
        assert ordered == sorted(ordered)

    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_double_reverse_identity(self, frame):
        twice = frame.sort_values("v").sort_values(
            "v", ascending=False
        ).sort_values("v")
        assert twice["v"].tolist() == frame.sort_values("v")["v"].tolist()


class TestMergeProperties:
    @given(frames(), frames())
    @settings(max_examples=50, deadline=None)
    def test_inner_merge_size_matches_key_products(self, a, b):
        joined = merge(
            a.rename(columns={"v": "va"}),
            b.rename(columns={"k": "j", "v": "vb"}),
            left_on="k",
            right_on="j",
        )
        expected = 0
        right_keys = [key for key in b["k"].tolist() if key is not None]
        for key in a["k"].tolist():
            if key is None:
                continue
            expected += sum(1 for other in right_keys if other == key)
        assert len(joined) == expected

    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_left_merge_at_least_left_size(self, frame):
        other = DataFrame({"j": [0, 1], "w": ["a", "b"]})
        joined = merge(frame, other, left_on="k", right_on="j", how="left")
        assert len(joined) >= len(frame)


class TestGroupByProperties:
    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_group_sizes_sum_to_total(self, frame):
        if not frame.columns:
            return
        sizes = frame.groupby("k").size()
        assert sum(sizes["size"].tolist()) == len(frame)

    @given(frames())
    @settings(max_examples=50, deadline=None)
    def test_group_sums_match_total(self, frame):
        out = frame.groupby("k").agg(total=("v", "sum"))
        whole = sum(v for v in frame["v"].tolist() if v is not None)
        assert sum(out["total"].tolist()) == whole
