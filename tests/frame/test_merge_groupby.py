"""Unit tests for frame merge and groupby."""

import pytest

from repro.errors import FrameError
from repro.frame import DataFrame, merge


@pytest.fixture()
def left() -> DataFrame:
    return DataFrame(
        {"id": [1, 2, 3, None], "name": ["a", "b", "c", "d"]}
    )


@pytest.fixture()
def right() -> DataFrame:
    return DataFrame(
        {"ref": [1, 1, 3, 9], "score": [10, 11, 12, 13]}
    )


class TestMerge:
    def test_inner_merge(self, left, right):
        joined = merge(left, right, left_on="id", right_on="ref")
        assert joined["name"].tolist() == ["a", "a", "c"]
        assert joined["score"].tolist() == [10, 11, 12]

    def test_left_merge_keeps_unmatched(self, left, right):
        joined = merge(left, right, left_on="id", right_on="ref", how="left")
        assert len(joined) == 5
        # Rows for the unmatched ids (2 and NULL) carry NULL scores.
        scores_by_name = {
            record["name"]: record["score"]
            for record in joined.to_records()
            if record["name"] in ("b", "d")
        }
        assert scores_by_name == {"b": None, "d": None}

    def test_null_keys_never_match(self, left, right):
        joined = merge(left, right, left_on="id", right_on="ref")
        assert "d" not in joined["name"].tolist()

    def test_same_named_key_appears_once(self):
        a = DataFrame({"k": [1, 2], "x": ["p", "q"]})
        b = DataFrame({"k": [1, 2], "y": ["r", "s"]})
        joined = merge(a, b, left_on="k", right_on="k")
        assert joined.columns == ["k", "x", "y"]

    def test_overlapping_non_key_columns_suffixed(self):
        a = DataFrame({"k": [1], "v": ["left"]})
        b = DataFrame({"j": [1], "v": ["right"]})
        joined = merge(a, b, left_on="k", right_on="j")
        assert set(joined.columns) == {"k", "v_x", "j", "v_y"}

    def test_overlapping_differently_named_keys_suffixed(self):
        a = DataFrame({"Id": [1], "t": ["x"]})
        b = DataFrame({"Id": [5], "PostId": [1]})
        joined = merge(a, b, left_on="Id", right_on="PostId")
        assert set(joined.columns) == {"Id_x", "t", "Id_y", "PostId"}

    def test_bad_how_rejected(self, left, right):
        with pytest.raises(FrameError):
            merge(left, right, left_on="id", right_on="ref", how="outer")

    def test_missing_key_rejected(self, left, right):
        with pytest.raises(FrameError):
            merge(left, right, left_on="nope", right_on="ref")

    def test_preserves_left_order(self, left, right):
        joined = merge(left, right, left_on="id", right_on="ref")
        assert joined["id"].tolist() == sorted(joined["id"].tolist())


class TestGroupBy:
    @pytest.fixture()
    def frame(self) -> DataFrame:
        return DataFrame(
            {
                "g": ["x", "y", "x", "x", "y"],
                "v": [1, 2, 3, None, 4],
            }
        )

    def test_agg_named_reductions(self, frame):
        out = frame.groupby("g").agg(
            n=("v", "count"),
            total=("v", "sum"),
            mean=("v", "mean"),
            low=("v", "min"),
            high=("v", "max"),
            first=("v", "first"),
        )
        x_row = out[out["g"] == "x"].row(0)
        assert x_row["n"] == 3  # count counts rows, including None
        assert x_row["total"] == 4
        assert x_row["mean"] == pytest.approx(2.0)
        assert (x_row["low"], x_row["high"]) == (1, 3)
        assert x_row["first"] == 1

    def test_size(self, frame):
        out = frame.groupby("g").size()
        assert dict(zip(out["g"], out["size"])) == {"x": 3, "y": 2}

    def test_group_order_is_first_occurrence(self, frame):
        out = frame.groupby("g").size()
        assert out["g"].tolist() == ["x", "y"]

    def test_multi_column_grouping(self):
        frame = DataFrame(
            {"a": [1, 1, 2], "b": ["p", "p", "q"], "v": [1, 2, 3]}
        )
        out = frame.groupby(["a", "b"]).agg(total=("v", "sum"))
        assert len(out) == 2

    def test_apply(self, frame):
        sizes = frame.groupby("g").apply(len)
        assert sizes == [3, 2]

    def test_unknown_reduction_rejected(self, frame):
        with pytest.raises(FrameError):
            frame.groupby("g").agg(bad=("v", "median"))

    def test_unknown_group_column_rejected(self, frame):
        with pytest.raises(FrameError):
            frame.groupby("nope")
