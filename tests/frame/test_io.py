"""Unit tests for CSV persistence."""

import pytest

from repro.errors import FrameError
from repro.frame import DataFrame, read_csv, write_csv
from repro.frame.io import export_dataset, load_frames


@pytest.fixture()
def frame() -> DataFrame:
    return DataFrame(
        {
            "id": [1, 2, 3],
            "name": ["a", 'quote"inside', "comma, inside"],
            "ratio": [1.5, None, -2.0],
            "flag": [True, False, None],
        }
    )


class TestRoundTrip:
    def test_values_round_trip(self, frame, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(frame, path)
        loaded = read_csv(path)
        assert loaded.columns == frame.columns
        assert loaded.to_records() == frame.to_records()

    def test_null_vs_empty_like_values(self, tmp_path):
        frame = DataFrame({"x": [None, 0, "0", ""]})
        path = tmp_path / "t.csv"
        write_csv(frame, path)
        loaded = read_csv(path)
        # "" and None both serialize to an empty field; integers and
        # numeric strings both come back as numbers -- documented
        # CSV-level lossiness.
        assert loaded["x"].tolist() == [None, 0, 0, None]

    def test_nested_directory_created(self, frame, tmp_path):
        path = tmp_path / "a" / "b" / "t.csv"
        write_csv(frame, path)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FrameError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(FrameError):
            read_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(FrameError):
            read_csv(path)


class TestDatasetExport:
    def test_export_and_load(self, tmp_path, datasets):
        dataset = datasets["codebase_community"]
        written = export_dataset(dataset, tmp_path)
        assert len(written) == len(dataset.frames)
        frames = load_frames(tmp_path)
        assert set(frames) == set(dataset.frames)
        assert frames["posts"].to_records() == (
            dataset.frames["posts"].to_records()
        )

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FrameError):
            load_frames(tmp_path / "nope")

    def test_load_empty_directory(self, tmp_path):
        with pytest.raises(FrameError):
            load_frames(tmp_path)

    def test_paper_workflow(self, tmp_path, datasets):
        # Appendix C reads pandas_dfs/<domain>/<table>.csv; same shape.
        export_dataset(
            datasets["california_schools"],
            tmp_path / "california_schools",
        )
        schools = read_csv(
            tmp_path / "california_schools" / "schools.csv"
        )
        top = schools.sort_values(
            "Longitude", ascending=False, key=abs
        ).head(1)
        assert top["GSoffered"][0]
