"""Unit tests for the DataFrame/Column substrate."""

import pytest

from repro.errors import FrameError
from repro.frame import Column, DataFrame


@pytest.fixture()
def df() -> DataFrame:
    return DataFrame(
        {
            "name": ["a", "b", "c", "d"],
            "score": [3, 1, None, 2],
            "city": ["X", "Y", "X", None],
        }
    )


class TestConstruction:
    def test_unequal_lengths_rejected(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1], "b": [1, 2]})

    def test_from_rows(self):
        frame = DataFrame.from_rows(["a", "b"], [(1, 2), (3, 4)])
        assert frame["a"].tolist() == [1, 3]

    def test_from_records_unions_keys(self):
        frame = DataFrame.from_records([{"a": 1}, {"a": 2, "b": 3}])
        assert frame["b"].tolist() == [None, 3]

    def test_empty(self):
        assert DataFrame({}).empty
        assert len(DataFrame({"a": []})) == 0


class TestSelection:
    def test_column_access(self, df):
        assert isinstance(df["name"], Column)
        assert df["name"].tolist() == ["a", "b", "c", "d"]

    def test_missing_column_raises(self, df):
        with pytest.raises(FrameError):
            df["nope"]

    def test_column_list_selection(self, df):
        sub = df[["name", "score"]]
        assert sub.columns == ["name", "score"]

    def test_boolean_mask_selection(self, df):
        kept = df[df["score"] > 1]
        assert kept["name"].tolist() == ["a", "d"]  # None drops out

    def test_row_and_iterrows(self, df):
        assert df.row(0) == {"name": "a", "score": 3, "city": "X"}
        assert len(list(df.iterrows())) == 4

    def test_setitem_validates_length(self, df):
        with pytest.raises(FrameError):
            df["extra"] = [1]

    def test_setitem_accepts_column(self, df):
        df["double"] = df["score"].apply(
            lambda value: None if value is None else value * 2
        )
        assert df["double"].tolist() == [6, 2, None, 4]


class TestColumnOperations:
    def test_comparisons_are_null_safe(self, df):
        mask = (df["score"] >= 2).tolist()
        assert mask == [True, False, False, True]

    def test_eq_and_ne(self, df):
        assert (df["city"] == "X").tolist() == [True, False, True, False]
        assert (df["city"] != "X").tolist() == [False, True, False, False]

    def test_logical_combinators(self, df):
        mask = (df["score"] > 0) & (df["city"] == "X")
        assert mask.tolist() == [True, False, False, False]
        either = (df["score"] > 2) | (df["city"] == "Y")
        assert either.tolist() == [True, True, False, False]
        assert (~(df["score"] > 0)).tolist() == [False, False, True, False]

    def test_isin_and_na_helpers(self, df):
        assert df["city"].isin(["X"]).tolist() == [
            True, False, True, False,
        ]
        assert df["score"].isna().tolist() == [False, False, True, False]
        assert df["score"].notna().tolist() == [True, True, False, True]

    def test_unique_skips_nulls_keeps_order(self, df):
        assert df["city"].unique() == ["X", "Y"]

    def test_reductions(self, df):
        assert df["score"].sum() == 6
        assert df["score"].mean() == pytest.approx(2.0)
        assert df["score"].min() == 1
        assert df["score"].max() == 3
        assert df["score"].count() == 3
        assert df["city"].nunique() == 2

    def test_str_contains(self):
        column = Column("t", ["Hello World", "bye", None])
        assert column.str_contains("world").tolist() == [
            True, False, False,
        ]
        assert column.str_contains("World", case=True).tolist() == [
            True, False, False,
        ]


class TestTransforms:
    def test_sort_values_with_nulls_first(self, df):
        ordered = df.sort_values("score")
        assert ordered["name"].tolist() == ["c", "b", "d", "a"]

    def test_sort_values_descending(self, df):
        ordered = df.sort_values("score", ascending=False)
        assert ordered["name"].tolist()[:2] == ["a", "d"]

    def test_sort_values_with_key(self):
        frame = DataFrame({"x": [-5, 2, -1]})
        ordered = frame.sort_values("x", key=abs, ascending=False)
        assert ordered["x"].tolist() == [-5, 2, -1]

    def test_sort_values_multi_key(self):
        frame = DataFrame(
            {"g": ["b", "a", "a"], "v": [1, 2, 1]}
        )
        ordered = frame.sort_values(["g", "v"], ascending=[True, False])
        assert ordered.row(0) == {"g": "a", "v": 2}

    def test_sort_requires_matching_flags(self, df):
        with pytest.raises(FrameError):
            df.sort_values(["name"], ascending=[True, False])

    def test_head(self, df):
        assert len(df.head(2)) == 2
        assert len(df.head(99)) == 4

    def test_drop_duplicates(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "x"]})
        assert len(frame.drop_duplicates()) == 2
        assert len(frame.drop_duplicates(subset="b")) == 1

    def test_rename_and_assign(self, df):
        renamed = df.rename(columns={"name": "title"})
        assert "title" in renamed.columns
        extended = df.assign(flag=[1, 0, 1, 0])
        assert extended["flag"].tolist() == [1, 0, 1, 0]
        assert "flag" not in df.columns  # assign copies
