"""Tests for the static concurrency analyzer (repro.analysis.concurrency).

One golden seeded-race fixture per CONC rule, the repository baseline
gate, allowlist plumbing, and a hypothesis property pinning that the
lockset inference depends only on lock *scopes*, not statement order.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import (
    analyze_source,
    analyze_tree,
    is_lockish,
    load_allowlist,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _analyze(body: str):
    return analyze_source(textwrap.dedent(body), path="src/fixture.py")


def _codes(findings) -> list[str]:
    return [finding.code for finding in findings]


class TestRuleFixtures:
    """Each seeded-race fixture must trigger exactly its intended rule."""

    def test_conc201_unguarded_counter(self):
        findings = _analyze(
            """
            class Meter:
                def __init__(self):
                    self._count = 0
                    self._lock = make_lock()

                def safe_inc(self):
                    with self._lock:
                        self._count += 1

                def racy_inc(self):
                    self._count += 1
            """
        )
        assert _codes(findings) == ["CONC201"]
        assert findings[0].render() == (
            "src/fixture.py:12:8: CONC201 attribute self._count is "
            "lock-guarded elsewhere but mutated here with no lock held "
            "on some path [Meter.racy_inc]"
        )

    def test_conc202_inconsistent_locksets(self):
        findings = _analyze(
            """
            class Split:
                def __init__(self):
                    self._items = []
                    self._read_lock = make_lock()
                    self._write_lock = make_lock()

                def via_read(self):
                    with self._read_lock:
                        self._items.append(1)

                def via_write(self):
                    with self._write_lock:
                        self._items.append(2)
            """
        )
        assert _codes(findings) == ["CONC202"]
        assert "no single lock orders all writers" in findings[0].message
        assert findings[0].where == "Split.via_write"

    def test_conc203_lock_order_cycle(self):
        findings = _analyze(
            """
            class Deadlocky:
                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """
        )
        assert _codes(findings) == ["CONC203"]
        assert "self._a_lock -> self._b_lock -> self._a_lock" in (
            findings[0].message
        )

    def test_conc203_interprocedural_cycle(self):
        # One arm of the inversion goes through a helper entered with
        # the lock held — no single function nests both scopes.
        findings = _analyze(
            """
            class Deadlocky:
                def forward(self):
                    with self._a_lock:
                        self._grab_b()

                def _grab_b(self):
                    with self._b_lock:
                        pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """
        )
        assert "CONC203" in _codes(findings)

    def test_conc204_aliased_locked_call(self):
        findings = _analyze(
            """
            class Server:
                def tick(self):
                    drain = self._drain_locked
                    drain()

                def _drain_locked(self):
                    pass
            """
        )
        assert _codes(findings) == ["CONC204"]
        assert findings[0].render() == (
            "src/fixture.py:5:8: CONC204 _drain_locked() reachable "
            "with no lock held [Server.tick]"
        )

    def test_conc205_escaping_guarded_container(self):
        findings = _analyze(
            """
            class Registry:
                def __init__(self):
                    self._entries = []
                    self._lock = make_lock()

                def add(self, item):
                    with self._lock:
                        self._entries.append(item)

                def all_entries(self):
                    return self._entries
            """
        )
        assert _codes(findings) == ["CONC205"]
        assert "escapes by return/yield" in findings[0].message
        assert findings[0].where == "Registry.all_entries"

    def test_conc206_lazy_init_outside_lock(self):
        findings = _analyze(
            """
            class Lazy:
                def __init__(self):
                    self._cache = None
                    self._lock = make_lock()

                def reset(self):
                    with self._lock:
                        self._cache = {}

                def get(self):
                    if self._cache is None:
                        self._cache = build()
                    return self._cache
            """
        )
        codes = _codes(findings)
        # The unlocked assignment inside the lazy-init branch is itself
        # an unguarded mutation; both findings point at the same bug.
        assert "CONC206" in codes
        assert set(codes) <= {"CONC201", "CONC206"}
        conc206 = [f for f in findings if f.code == "CONC206"]
        assert "check-then-act lazy init" in conc206[0].message

    def test_conc207_mutable_class_attribute(self):
        findings = _analyze(
            """
            class Shared:
                registry = {}

                def put(self, key, value):
                    self.registry[key] = value
            """
        )
        assert "CONC207" in _codes(findings)

    def test_conc207_allcaps_constant_exempt(self):
        findings = _analyze(
            """
            class Tables:
                _METRIC_NAMES = {"a": 1}
            """
        )
        assert findings == []

    def test_conc208_acquire_without_finally(self):
        findings = _analyze(
            """
            class Manual:
                def risky(self):
                    self._lock.acquire()
                    do_work()
                    self._lock.release()
            """
        )
        assert _codes(findings) == ["CONC208"]
        assert "exception leaks the lock" in findings[0].message

    def test_conc208_finally_release_ok(self):
        findings = _analyze(
            """
            class Manual:
                def disciplined(self):
                    self._lock.acquire()
                    try:
                        do_work()
                    finally:
                        self._lock.release()
            """
        )
        assert findings == []

    def test_locked_contract_method_clean(self):
        # A *_locked helper's body is in contract; the unlocked call
        # into it is the only finding.
        findings = _analyze(
            """
            class Server:
                def tick(self):
                    self._drain_locked()

                def _drain_locked(self):
                    self._advance_locked()

                def _advance_locked(self):
                    self._pending = []
            """
        )
        assert _codes(findings) == ["CONC204"]

    def test_worker_shared_tag_on_shared_classes(self):
        findings = _analyze(
            """
            class UDFMemoCache:
                def __init__(self):
                    self._entries = {}
                    self._lock = make_lock()

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def racy_clear(self):
                    self._entries.clear()
            """
        )
        assert _codes(findings) == ["CONC201"]
        assert "(worker-shared)" in findings[0].message


class TestLockishHeuristics:
    def test_is_lockish(self):
        assert is_lockish("self._lock")
        assert is_lockish("self._cv")
        assert is_lockish("self._meter_lock")
        assert is_lockish("_METER_LOCK")
        assert not is_lockish("self._pending")
        assert not is_lockish("self.clock")  # no lock-ish leaf token


class TestAllowlist:
    def test_pyproject_conc_entry_suppresses(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro.conc]
                allow = [
                    "src/m.py:CONC207  # registry is write-once at import",
                ]
                """
            )
        )
        src = tmp_path / "src"
        src.mkdir()
        (src / "m.py").write_text(
            textwrap.dedent(
                """
                class Shared:
                    registry = {}
                """
            )
        )
        report = analyze_tree(tmp_path)
        assert report.ok
        assert _codes(report.suppressed) == ["CONC207"]
        allowlist = load_allowlist(tmp_path)
        assert allowlist == {
            "src/m.py:CONC207": "registry is write-once at import"
        }

    def test_report_render_and_json(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "m.py").write_text(
            textwrap.dedent(
                """
                class Shared:
                    registry = {}
                """
            )
        )
        report = analyze_tree(tmp_path)
        rendered = report.render()
        assert rendered.startswith(
            "concurrency: unsafe (1 finding(s), 0 suppressed, 1 file(s))"
        )
        assert "per-rule: CONC207 x1" in rendered
        assert '"ok": false' in report.to_json()


# ---------------------------------------------------------------------------
# Property: inference depends on lock scopes, not statement order
# ---------------------------------------------------------------------------

_ATTRS = ("_alpha", "_beta", "_gamma", "_delta")


def _build_source(locked: list[str], unlocked: list[str]) -> str:
    locked_body = (
        "\n".join(f"            self.{attr} += 1" for attr in locked)
        or "            pass"
    )
    unlocked_body = (
        "\n".join(f"        self.{attr} += 1" for attr in unlocked)
        or "        pass"
    )
    return textwrap.dedent(
        """
        class Fixture:
            def guarded(self):
                with self._lock:
        {locked}

            def bare(self):
        {unlocked}
        """
    ).format(locked=locked_body, unlocked=unlocked_body)


def _signature(findings) -> list[tuple[str, str, str]]:
    """Order/line-insensitive essence of a finding list."""
    return sorted(
        (f.code, f.message, f.where) for f in findings
    )


@settings(max_examples=60, deadline=None)
@given(
    locked=st.lists(st.sampled_from(_ATTRS), unique=True),
    unlocked=st.lists(st.sampled_from(_ATTRS), unique=True),
    seed=st.randoms(use_true_random=False),
)
def test_lockset_inference_stable_under_reordering(locked, unlocked, seed):
    """Permuting statements within each lock scope never changes the
    findings (codes, messages, methods) — only line numbers may move."""
    baseline = _signature(
        analyze_source(_build_source(locked, unlocked))
    )
    shuffled_locked = list(locked)
    shuffled_unlocked = list(unlocked)
    seed.shuffle(shuffled_locked)
    seed.shuffle(shuffled_unlocked)
    permuted = _signature(
        analyze_source(_build_source(shuffled_locked, shuffled_unlocked))
    )
    assert permuted == baseline


@settings(max_examples=30, deadline=None)
@given(
    attrs=st.lists(
        st.sampled_from(_ATTRS), unique=True, min_size=1
    ),
    seed=st.randoms(use_true_random=False),
)
def test_method_order_irrelevant(attrs, seed):
    """Shuffling whole method definitions does not change findings."""
    methods = [
        textwrap.dedent(
            f"""
            def guard_{attr.strip('_')}(self):
                with self._lock:
                    self.{attr} += 1
            """
        )
        for attr in attrs
    ] + [
        textwrap.dedent(
            f"""
            def bare_{attr.strip('_')}(self):
                self.{attr} += 1
            """
        )
        for attr in attrs
    ]

    def assemble(parts: list[str]) -> str:
        body = "\n".join(
            textwrap.indent(part, "    ") for part in parts
        )
        return f"class Fixture:\n{body}"

    baseline = _signature(analyze_source(assemble(methods)))
    shuffled = list(methods)
    seed.shuffle(shuffled)
    permuted = _signature(analyze_source(assemble(shuffled)))
    assert permuted == baseline
    # And the fixture is not vacuous: every attr races.
    assert len(baseline) == len(attrs)


class TestRepositoryBaseline:
    @pytest.mark.skipif(
        not (REPO_ROOT / "src" / "repro").is_dir(),
        reason="repository layout not available",
    )
    def test_src_has_no_unwaived_conc_findings(self):
        report = analyze_tree(REPO_ROOT)
        assert report.ok, report.render()
        # The worker-shared surface must include the serving stack's
        # load-bearing classes (regression guard on the closure).
        names = {entry.split(" ")[0] for entry in report.shared_classes}
        assert {
            "BatchingLM",
            "Session",
            "UDFMemoCache",
            "MetricsRegistry",
            "Tracer",
            "VirtualClock",
        } <= names
