"""Tests for the determinism linter (repro.analysis.lint)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import lint_file, lint_tree

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(root: Path, relative: str, body: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


def _codes(findings) -> list[str]:
    return [finding.code for finding in findings]


class TestRules:
    def test_wall_clock_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET101", "DET101"]

    def test_clock_module_exempt_from_wall_clock(self, tmp_path):
        path = _write(
            tmp_path,
            "src/serve/clock.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_unseeded_random_flagged_seeded_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            import random

            def roll():
                rng = random.Random(7)   # fine: explicit seed
                return rng.random() + random.random()
            """,
        )
        findings = lint_file(path, tmp_path)
        assert _codes(findings) == ["DET102"]
        assert "random.random()" in findings[0].message

    def test_numpy_global_random_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            import numpy as np

            def roll():
                ok = np.random.default_rng(3)  # fine: explicit seed
                return ok, np.random.random()
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET102"]

    def test_bare_except_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            def swallow():
                try:
                    return 1
                except:
                    return 2
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET103"]

    def test_mutable_default_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            def collect(xs=[], *, index={}):
                return xs, index
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET104", "DET104"]

    def test_locked_helper_outside_lock_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            class Server:
                def tick(self):
                    self._drain_locked()

                def safe(self):
                    with self._lock:
                        self._drain_locked()

                def _drain_locked(self):
                    self._advance_locked()  # locked helper: in contract

                def _advance_locked(self):
                    pass
            """,
        )
        findings = lint_file(path, tmp_path)
        assert _codes(findings) == ["DET105"]
        assert findings[0].line == 4  # the call inside tick()

    def test_locked_helper_via_alias_flagged(self, tmp_path):
        # The old name-only check missed aliased method references —
        # the lockset-inference rewrite resolves them.
        path = _write(
            tmp_path,
            "src/m.py",
            """
            class Server:
                def tick(self):
                    drain = self._drain_locked
                    drain()

                def _drain_locked(self):
                    pass
            """,
        )
        findings = lint_file(path, tmp_path)
        assert _codes(findings) == ["DET105"]
        assert findings[0].line == 5  # the aliased call, not the bind

    def test_locked_helper_via_class_dispatch_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            class Server:
                def tick(self):
                    self.__class__._drain_locked(self)

                def _drain_locked(self):
                    pass
            """,
        )
        findings = lint_file(path, tmp_path)
        assert _codes(findings) == ["DET105"]

    def test_locked_helper_through_locked_caller_chain_ok(self, tmp_path):
        # Interprocedural: a private helper whose only callers hold the
        # lock is entered locked, so its *_locked call is in contract —
        # the old syntactic check could not see through the hop.
        path = _write(
            tmp_path,
            "src/m.py",
            """
            class Server:
                def tick(self):
                    with self._lock:
                        self._step()

                def _step(self):
                    self._drain_locked()

                def _drain_locked(self):
                    pass
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_locked_helper_guard_scope_counts(self, tmp_path):
        # racecheck.guard wraps the lock; the scope still counts.
        path = _write(
            tmp_path,
            "src/m.py",
            """
            from repro.obs import racecheck

            class Server:
                def tick(self):
                    with racecheck.guard("Server._lock", self._lock):
                        self._drain_locked()

                def _drain_locked(self):
                    pass
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_obs_identity_builtins_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/obs/trace.py",
            """
            def span_id(span):
                return id(span)

            def span_key(span):
                return hash(span.name)
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET106", "DET106"]

    def test_obs_uuid_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/obs/export.py",
            """
            import uuid

            def fresh_id():
                return uuid.uuid4()
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET106"]

    def test_obs_from_import_uuid_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/obs/export.py",
            """
            from uuid import uuid4

            def fresh_id():
                return uuid4()
            """,
        )
        assert _codes(lint_file(path, tmp_path)) == ["DET106"]

    def test_identity_builtins_allowed_outside_obs(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/serve/m.py",
            """
            def key(value):
                return hash(value), id(value)
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_obs_clean_file_passes(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/obs/trace.py",
            """
            def export_ids(roots):
                return {index: position
                        for position, (index, _) in enumerate(roots)}
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_clean_file_no_findings(self, tmp_path):
        path = _write(
            tmp_path,
            "src/m.py",
            """
            import random

            def roll(seed, xs=None):
                rng = random.Random(seed)
                try:
                    return rng.choice(xs or [1])
                except IndexError:
                    return None
            """,
        )
        assert lint_file(path, tmp_path) == []


class TestAllowlist:
    def test_pyproject_entry_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "pyproject.toml",
            """
            [tool.repro.lint]
            allow = [
                "src/m.py:DET103  # legacy shim, scheduled for removal",
            ]
            """,
        )
        _write(
            tmp_path,
            "src/m.py",
            """
            def swallow(xs=[]):
                try:
                    return xs
                except:
                    return None
            """,
        )
        reported, suppressed = lint_tree(tmp_path)
        assert _codes(reported) == ["DET104"]
        assert _codes(suppressed) == ["DET103"]

    def test_deterministic_ordering(self, tmp_path):
        _write(tmp_path, "src/b.py", "def f(x=[]):\n    return x\n")
        _write(tmp_path, "src/a.py", "def g(y={}):\n    return y\n")
        first, _ = lint_tree(tmp_path)
        second, _ = lint_tree(tmp_path)
        assert first == second
        assert [f.path for f in first] == ["src/a.py", "src/b.py"]


class TestRepositoryBaseline:
    @pytest.mark.skipif(
        not (REPO_ROOT / "src" / "repro").is_dir(),
        reason="repository layout not available",
    )
    def test_src_is_clean(self):
        reported, _ = lint_tree(REPO_ROOT)
        assert reported == [], "\n".join(f.render() for f in reported)
