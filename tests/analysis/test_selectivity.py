"""Regression tests for the shared selectivity estimator.

Pins the two latent estimation bugs the optimizer work surfaced:

* **Negated predicates**: ``col <> lit`` and ``NOT p`` used to fall
  back to the blanket default selectivity, which priced "matches
  almost everything" filters as if they pruned two-thirds of the rows
  — making the optimizer hoist them ahead of genuinely selective
  conjuncts.  They must estimate the *complement* of the positive
  form.
* **IS [NOT] NULL**: previously defaulted too; it must come from the
  catalog's null counts (``ColumnStats.null_fraction``).

Plus the estimator's algebra (AND product, OR inclusion-exclusion,
clamping) and its integration into ``CostEstimate.expected_result_rows``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SQLAnalyzer
from repro.analysis.cost import (
    BETWEEN_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    LIKE_SELECTIVITY,
    RANGE_SELECTIVITY,
    ColumnStats,
    predicate_selectivity,
)
from repro.db import Column, Database, DataType, TableSchema
from repro.db.sql.parser import parse_statement

#: 12 rows; genre has 3 distinct values, n has 6 distinct and 4 NULLs.
STATS = {
    "genre": ColumnStats(rows=12, distinct=3, nulls=0),
    "n": ColumnStats(rows=12, distinct=6, nulls=4),
    "s": ColumnStats(rows=12, distinct=12, nulls=0),
}


def lookup(name, table=None):
    return STATS.get(name)


def sel(predicate: str) -> float:
    statement = parse_statement(f"SELECT * FROM t WHERE {predicate}")
    return predicate_selectivity(statement.where, lookup)


class TestComparisons:
    def test_equality_uses_distinct_count(self):
        assert sel("genre = 'Romance'") == pytest.approx(1 / 3)
        assert sel("n = 2") == pytest.approx(1 / 6)

    def test_equality_with_column_on_the_right(self):
        assert sel("'Romance' = genre") == pytest.approx(1 / 3)

    def test_inequality_is_the_complement_not_the_default(self):
        # The regression: <> must price as 1 - 1/distinct.  For a
        # 3-distinct column that is 2/3 — twice the old default.
        assert sel("genre <> 'Drama'") == pytest.approx(2 / 3)
        assert sel("genre <> 'Drama'") != pytest.approx(
            DEFAULT_SELECTIVITY
        )

    def test_not_wraps_as_complement(self):
        assert sel("NOT genre = 'Drama'") == pytest.approx(2 / 3)
        assert sel("NOT genre <> 'Drama'") == pytest.approx(1 / 3)
        assert sel("NOT NOT genre = 'Drama'") == pytest.approx(1 / 3)

    def test_range_comparisons_use_the_range_constant(self):
        assert sel("n > 2") == pytest.approx(RANGE_SELECTIVITY)
        assert sel("n <= 2") == pytest.approx(RANGE_SELECTIVITY)

    def test_unknown_column_falls_back_to_default(self):
        assert sel("mystery = 1") == pytest.approx(DEFAULT_SELECTIVITY)

    def test_column_to_column_comparison_falls_back(self):
        # No literal side: distinct counts alone cannot price it.
        assert sel("genre = s") == pytest.approx(DEFAULT_SELECTIVITY)


class TestNullPredicates:
    def test_is_null_uses_null_fraction(self):
        # The regression: 4 of 12 rows are NULL, so IS NULL is 1/3 by
        # *catalog evidence*, not by coincidence of the default.
        assert sel("n IS NULL") == pytest.approx(4 / 12)
        assert sel("genre IS NULL") == pytest.approx(0.0)

    def test_is_not_null_is_the_complement(self):
        assert sel("n IS NOT NULL") == pytest.approx(8 / 12)
        assert sel("genre IS NOT NULL") == pytest.approx(1.0)

    def test_not_is_null_matches_is_not_null(self):
        assert sel("NOT n IS NULL") == pytest.approx(sel("n IS NOT NULL"))

    def test_unknown_column_defaults(self):
        assert sel("mystery IS NULL") == pytest.approx(
            DEFAULT_SELECTIVITY
        )


class TestShapes:
    def test_between_and_its_negation(self):
        assert sel("n BETWEEN 1 AND 3") == pytest.approx(
            BETWEEN_SELECTIVITY
        )
        assert sel("n NOT BETWEEN 1 AND 3") == pytest.approx(
            1 - BETWEEN_SELECTIVITY
        )

    def test_like_and_its_negation(self):
        assert sel("s LIKE 'a%'") == pytest.approx(LIKE_SELECTIVITY)
        assert sel("s NOT LIKE 'a%'") == pytest.approx(
            1 - LIKE_SELECTIVITY
        )

    def test_in_list_scales_with_item_count(self):
        assert sel("genre IN ('Romance', 'Action')") == pytest.approx(
            2 / 3
        )
        assert sel("genre NOT IN ('Romance', 'Action')") == pytest.approx(
            1 / 3
        )

    def test_in_list_clamps_at_one(self):
        assert sel(
            "genre IN ('a', 'b', 'c', 'd', 'e')"
        ) == pytest.approx(1.0)
        assert sel(
            "genre NOT IN ('a', 'b', 'c', 'd', 'e')"
        ) == pytest.approx(0.0)

    def test_boolean_literals(self):
        assert sel("1") == pytest.approx(1.0)
        assert sel("0") == pytest.approx(0.0)
        assert sel("NULL") == pytest.approx(0.0)


class TestAlgebra:
    def test_and_is_a_product(self):
        assert sel("genre = 'Romance' AND n IS NULL") == pytest.approx(
            (1 / 3) * (1 / 3)
        )

    def test_or_is_inclusion_exclusion(self):
        a, b = 1 / 3, 1 / 3
        assert sel("genre = 'Romance' OR n IS NULL") == pytest.approx(
            a + b - a * b
        )

    PREDICATES = [
        "genre = 'Romance'",
        "genre <> 'Drama'",
        "n > 2",
        "n IS NULL",
        "n IS NOT NULL",
        "s LIKE 'a%'",
        "n BETWEEN 1 AND 3",
        "genre IN ('Romance', 'Action')",
        "mystery = 1",
    ]

    trees = st.recursive(
        st.sampled_from(PREDICATES),
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda pair: f"({pair[0]} AND {pair[1]})"
            ),
            st.tuples(children, children).map(
                lambda pair: f"({pair[0]} OR {pair[1]})"
            ),
            children.map(lambda child: f"NOT ({child})"),
        ),
        max_leaves=4,
    )

    @settings(max_examples=60, deadline=None)
    @given(predicate=trees)
    def test_always_a_probability(self, predicate):
        assert 0.0 <= sel(predicate) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(predicate=trees)
    def test_negation_is_an_involution_on_the_estimate(self, predicate):
        assert sel(f"NOT ({predicate})") == pytest.approx(
            1.0 - sel(predicate)
        )


class TestExpectedResultRows:
    """Integration: the analyzer surfaces the estimate as an
    *expectation* field while keeping worst-case bounds untouched."""

    def build_database(self) -> Database:
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("genre", DataType.TEXT),
                    Column("n", DataType.INTEGER),
                ],
            )
        )
        db.insert(
            "t",
            [
                (["Romance", "Action", "Drama"][i % 3], i if i < 8 else None)
                for i in range(12)
            ],
        )
        return db

    def cost(self, sql: str):
        db = self.build_database()
        report = SQLAnalyzer(db).analyze(parse_statement(sql))
        assert report.ok
        assert report.cost is not None
        return report.cost

    def test_no_where_has_no_expectation(self):
        cost = self.cost("SELECT * FROM t")
        assert cost.expected_result_rows is None
        assert cost.result_rows == 12

    def test_equality_expectation(self):
        cost = self.cost("SELECT * FROM t WHERE genre = 'Romance'")
        assert cost.expected_result_rows == 4  # 12 / 3 distinct
        assert cost.result_rows == 12  # worst case is untouched

    def test_is_null_expectation_uses_null_counts(self):
        cost = self.cost("SELECT * FROM t WHERE n IS NULL")
        assert cost.expected_result_rows == 4  # 4 of 12 rows are NULL

    def test_negation_expectation_is_the_complement(self):
        cost = self.cost("SELECT * FROM t WHERE genre <> 'Drama'")
        assert cost.expected_result_rows == 8  # 12 * 2/3
