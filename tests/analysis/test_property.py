"""The analyzer's soundness contract, property-tested.

Invariant: if :class:`~repro.analysis.SQLAnalyzer` reports no
error-severity diagnostics for a generated SELECT, the engine must
plan and execute it without raising — on every bundled BIRD-style
domain.  The generator covers projections, scalar functions,
arithmetic, WHERE predicates (comparisons, LIKE, BETWEEN, IS NULL,
IN-list), grouped and ungrouped aggregation, HAVING, ORDER BY (ordinal
and expression), LIMIT/OFFSET, and inner joins.

SQRT is deliberately excluded: a negative argument is a *data*-
dependent domain error no static analyzer can rule out from the
catalog alone (the documented soundness caveat).

The run also checks the cost bound: actual result rows never exceed
``cost.result_rows``.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SQLAnalyzer
from repro.data import DOMAINS, load_domain
from repro.db.types import DataType
from repro.errors import ReproError


@lru_cache(maxsize=None)
def _domain(name: str):
    dataset = load_domain(name, seed=0)
    return dataset.db, SQLAnalyzer(dataset.db)


def _columns(db, table, *dtypes):
    return [
        column.name
        for column in db.table(table).schema.columns
        if not dtypes or column.dtype in dtypes
    ]


def _quote(name: str) -> str:
    return f'"{name}"' if " " in name else name


@st.composite
def selects(draw):
    """A random SELECT over a random bundled domain.  Returns
    (domain, sql)."""
    domain = draw(st.sampled_from(sorted(DOMAINS)))
    db, _ = _domain(domain)
    table = draw(st.sampled_from(sorted(db.table_names)))
    numeric = _columns(db, table, DataType.INTEGER, DataType.REAL)
    text = _columns(db, table, DataType.TEXT)
    everything = _columns(db, table)

    def scalar_expression() -> str:
        choice = draw(st.integers(0, 4))
        if choice == 0 and numeric:
            column = _quote(draw(st.sampled_from(numeric)))
            op = draw(st.sampled_from(["+", "-", "*"]))
            return f"{column} {op} {draw(st.integers(-3, 3))}"
        if choice == 1 and numeric:
            fn = draw(st.sampled_from(["ABS", "SIGN", "ROUND"]))
            return f"{fn}({_quote(draw(st.sampled_from(numeric)))})"
        if choice == 2 and text:
            fn = draw(st.sampled_from(["UPPER", "LOWER", "LENGTH", "TRIM"]))
            return f"{fn}({_quote(draw(st.sampled_from(text)))})"
        if choice == 3:
            column = _quote(draw(st.sampled_from(everything)))
            return f"COALESCE({column}, {column})"
        return _quote(draw(st.sampled_from(everything)))

    def predicate() -> str:
        choice = draw(st.integers(0, 4))
        if choice == 0 and numeric:
            column = _quote(draw(st.sampled_from(numeric)))
            op = draw(st.sampled_from(["<", "<=", "=", "<>", ">", ">="]))
            return f"{column} {op} {draw(st.integers(-10, 10))}"
        if choice == 1 and text:
            column = _quote(draw(st.sampled_from(text)))
            return f"{column} LIKE '%{draw(st.sampled_from('aeio'))}%'"
        if choice == 2 and numeric:
            column = _quote(draw(st.sampled_from(numeric)))
            low = draw(st.integers(-5, 5))
            return f"{column} BETWEEN {low} AND {low + 5}"
        if choice == 3:
            column = _quote(draw(st.sampled_from(everything)))
            maybe_not = "NOT " if draw(st.booleans()) else ""
            return f"{column} IS {maybe_not}NULL"
        if numeric:
            return f"{_quote(draw(st.sampled_from(numeric)))} IN (1, 2, 3)"
        return f"{_quote(draw(st.sampled_from(everything)))} IS NOT NULL"

    grouped = draw(st.booleans())
    if grouped:
        group_column = _quote(draw(st.sampled_from(everything)))
        aggregate = "COUNT(*)"
        if numeric and draw(st.booleans()):
            fn = draw(st.sampled_from(["SUM", "AVG", "MIN", "MAX"]))
            aggregate = f"{fn}({_quote(draw(st.sampled_from(numeric)))})"
        items = f"{group_column}, {aggregate} AS agg"
        sql = f"SELECT {items} FROM {table}"
        if draw(st.booleans()):
            sql += f" WHERE {predicate()}"
        sql += f" GROUP BY {group_column}"
        if draw(st.booleans()):
            sql += " HAVING COUNT(*) >= 1"
        if draw(st.booleans()):
            sql += f" ORDER BY {draw(st.sampled_from([1, 2]))}"
    else:
        count = draw(st.integers(1, 3))
        items = ", ".join(
            f"{scalar_expression()} AS c{i}" for i in range(count)
        )
        distinct = "DISTINCT " if draw(st.booleans()) else ""
        sql = f"SELECT {distinct}{items} FROM {table}"
        if draw(st.booleans()):
            sql += f" WHERE {predicate()}"
        if draw(st.booleans()):
            sql += f" ORDER BY {draw(st.integers(1, count))}"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(0, 20))}"
        if draw(st.booleans()):
            sql += f" OFFSET {draw(st.integers(0, 5))}"
    return domain, sql


class TestSoundness:
    @settings(max_examples=200, deadline=None)
    @given(case=selects())
    def test_accepted_queries_execute(self, case):
        domain, sql = case
        db, analyzer = _domain(domain)
        report = analyzer.analyze(sql)
        if not report.ok:
            return  # rejection is always safe; soundness is one-way
        try:
            result = db.execute(sql)
        except ReproError as error:  # pragma: no cover - the bug trap
            raise AssertionError(
                f"analyzer accepted but engine rejected:\n  {sql}\n"
                f"  engine: {type(error).__name__}: {error}\n"
                f"  report: {report.render()}"
            ) from error
        assert len(result.rows) <= report.cost.result_rows, sql

    @settings(max_examples=50, deadline=None)
    @given(case=selects())
    def test_analysis_matches_preflight_execute(self, case):
        """execute(analyze=True) agrees with the standalone report."""
        domain, sql = case
        db, analyzer = _domain(domain)
        report = analyzer.analyze(sql)
        if report.ok:
            db.execute(sql, analyze=True)  # must not raise
        else:
            from repro.errors import AnalysisError

            try:
                db.execute(sql, analyze=True)
            except AnalysisError as error:
                assert error.report is not None
                assert not error.report.ok
            else:  # pragma: no cover - the bug trap
                raise AssertionError(
                    f"standalone analysis rejected but pre-flight "
                    f"admitted: {sql}"
                )
