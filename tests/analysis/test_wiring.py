"""Analyzer wiring through Database / SQLExecutor / TAGPipeline."""

from __future__ import annotations

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    TAGPipeline,
)
from repro.core.tag import TAGError
from repro.db import Column, Database, DataType, TableSchema
from repro.errors import AnalysisError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("name", DataType.TEXT),
            ],
        )
    )
    database.insert("t", [(1, "a")])
    return database


class TestDatabasePreflight:
    def test_execute_analyze_raises_with_report(self, db):
        with pytest.raises(AnalysisError) as excinfo:
            db.execute("SELECT ghost FROM t", analyze=True)
        report = excinfo.value.report
        assert report is not None
        assert [d.code for d in report.errors] == ["ANA003"]
        assert "unknown column 'ghost'" in str(excinfo.value)

    def test_execute_analyze_passes_clean_query(self, db):
        result = db.execute("SELECT name FROM t", analyze=True)
        assert result.rows == [("a",)]

    def test_default_execute_skips_analysis(self, db):
        # Warnings (and analyzer opinions generally) never block the
        # default path; only opt-in pre-flight rejects.
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            db.execute("SELECT ghost FROM t")

    def test_dml_unaffected_by_analyze_flag(self, db):
        result = db.execute("INSERT INTO t VALUES (2, 'b')", analyze=True)
        assert result.rows == [(1,)]

    def test_analyze_method_never_raises(self, db):
        report = db.analyze("SELEKT")
        assert [d.code for d in report.diagnostics] == ["ANA001"]


class TestTAGErrorMapping:
    def test_analysis_error_maps_to_step_zero(self, db):
        try:
            db.execute("SELECT ghost FROM t", analyze=True)
        except AnalysisError as error:
            tag_error = TAGError.from_exception(error, step=1)
        # The analyzer indicts the synthesized SQL: step 0, kind
        # "analysis" — regardless of the step the caller was in.
        assert tag_error.kind == "analysis"
        assert tag_error.step == 0

    def test_other_errors_keep_class_kind(self):
        tag_error = TAGError.from_exception(ValueError("nope"), step=2)
        assert tag_error.kind == "ValueError"
        assert tag_error.step == 2

    def test_pipeline_fails_fast_on_bad_sql(self, db):
        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT ghost FROM t"),
            SQLExecutor(db, analyze=True),
            NoGenerator(),
        )
        result = pipeline.run("whatever")
        assert not result.ok
        assert result.error.kind == "analysis"
        assert result.error.step == 0

    def test_pipeline_unaffected_when_analyze_off(self, db):
        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT ghost FROM t"),
            SQLExecutor(db),
            NoGenerator(),
        )
        result = pipeline.run("whatever")
        assert not result.ok
        assert result.error.kind == "PlanningError"
