"""Golden-diagnostic tests: one pinned case per taxonomy code.

Every documented ANA code must fire on its canonical trigger, with the
expected severity and (where the AST carries positions) a source span
pointing at the offending token.  Codes are stable API — renaming one
is a breaking change, and these tests are the contract.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, SQLAnalyzer
from repro.db import Column, Database, DataType, TableSchema


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("name", DataType.TEXT),
                Column("score", DataType.REAL),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "u",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("label", DataType.TEXT),
            ],
        )
    )
    database.insert("t", [(1, "a", 1.5), (2, "b", 2.5)])
    database.insert("u", [(1, "x")])
    return database


def codes(report) -> list[str]:
    return [d.code for d in report.diagnostics]


GOLDEN = [
    ("ANA001", "SELEKT id FROM t"),
    ("ANA002", "SELECT id FROM nope"),
    ("ANA003", "SELECT ghost FROM t"),
    ("ANA004", "SELECT id FROM t JOIN u ON t.id = u.id"),
    ("ANA005", "SELECT FROBNICATE(id) FROM t"),
    ("ANA006", "SELECT id FROM t WHERE COUNT(*) > 1"),
    ("ANA007", "SELECT UPPER(name, name) FROM t"),
    ("ANA008", "SELECT name + 1 FROM t"),
    ("ANA009", "SELECT id FROM t WHERE * > 1"),
    ("ANA010", "SELECT name FROM t GROUP BY id"),
    ("ANA011", "SELECT id FROM t LIMIT id"),
    ("ANA012", "SELECT CAST(id AS BLOB) FROM t"),
    ("ANA013", "SELECT (SELECT id, name FROM t)"),
    ("ANA014", "SELECT id FROM t ORDER BY 9"),
]


class TestGoldenTaxonomy:
    @pytest.mark.parametrize("code,sql", GOLDEN, ids=[c for c, _ in GOLDEN])
    def test_code_fires(self, db, code, sql):
        report = SQLAnalyzer(db).analyze(sql)
        assert code in codes(report), report.render()

    @pytest.mark.parametrize(
        "code,sql",
        [case for case in GOLDEN if case[0] != "ANA010"],
        ids=[c for c, _ in GOLDEN if c != "ANA010"],
    )
    def test_errors_reject(self, db, code, sql):
        report = SQLAnalyzer(db).analyze(sql)
        assert not report.ok
        assert all(
            d.severity is Severity.ERROR
            for d in report.diagnostics
            if d.code == code
        )

    def test_warning_does_not_reject(self, db):
        report = SQLAnalyzer(db).analyze("SELECT name FROM t GROUP BY id")
        assert report.ok
        assert [d.code for d in report.warnings] == ["ANA010"]


class TestSpans:
    def test_unknown_column_span_covers_token(self, db):
        sql = "SELECT ghost FROM t"
        report = SQLAnalyzer(db).analyze(sql)
        (diagnostic,) = report.errors
        assert diagnostic.span is not None
        assert diagnostic.span.excerpt(sql) == "ghost"

    def test_unknown_table_span_covers_token(self, db):
        sql = "SELECT id FROM nope"
        report = SQLAnalyzer(db).analyze(sql)
        (diagnostic,) = report.errors
        assert diagnostic.span.excerpt(sql) == "nope"

    def test_qualified_column_span(self, db):
        sql = "SELECT t.ghost FROM t"
        report = SQLAnalyzer(db).analyze(sql)
        (diagnostic,) = report.errors
        assert diagnostic.span.excerpt(sql) == "t.ghost"

    def test_function_span_covers_name(self, db):
        sql = "SELECT FROBNICATE(id) FROM t"
        report = SQLAnalyzer(db).analyze(sql)
        (diagnostic,) = report.errors
        assert diagnostic.span.excerpt(sql) == "FROBNICATE"

    def test_syntax_error_span_present(self, db):
        report = SQLAnalyzer(db).analyze("SELEKT id FROM t")
        (diagnostic,) = report.errors
        assert diagnostic.code == "ANA001"
        assert diagnostic.span is not None

    def test_caret_rendering(self, db):
        sql = "SELECT ghost FROM t"
        report = SQLAnalyzer(db).analyze(sql)
        rendered = report.render()
        assert "^^^^^" in rendered
        assert "analyze: rejected" in rendered


class TestResolution:
    def test_alias_binding_resolves(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT x.name FROM t x WHERE x.score > 1"
        )
        assert report.ok, report.render()

    def test_original_name_hidden_by_alias(self, db):
        report = SQLAnalyzer(db).analyze("SELECT t.name FROM t x")
        assert codes(report) == ["ANA003"]

    def test_same_table_twice_ambiguous(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT id FROM t a JOIN t b ON a.id = b.id"
        )
        assert "ANA004" in codes(report)

    def test_subquery_source_exposes_aliases(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT s.n FROM (SELECT name AS n FROM t) s"
        )
        assert report.ok, report.render()

    def test_unknown_inside_subquery_source(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT s.n FROM (SELECT ghost AS n FROM t) s"
        )
        assert "ANA003" in codes(report)

    def test_having_sees_output_alias(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT name, COUNT(*) AS c FROM t GROUP BY name HAVING c > 1"
        )
        assert report.ok, report.render()

    def test_order_by_output_alias(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT score * 2 AS doubled FROM t ORDER BY doubled"
        )
        assert report.ok, report.render()

    def test_group_by_ordinal_resolves(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT name, COUNT(*) FROM t GROUP BY 1"
        )
        assert report.ok, report.render()

    def test_group_by_ordinal_out_of_range(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT name FROM t GROUP BY 7"
        )
        assert "ANA014" in codes(report)

    def test_star_expansion_typechecks(self, db):
        report = SQLAnalyzer(db).analyze("SELECT * FROM t")
        assert report.ok

    def test_qualified_star_unknown_binding(self, db):
        report = SQLAnalyzer(db).analyze("SELECT z.* FROM t")
        assert "ANA002" in codes(report)

    def test_open_scope_suppresses_cascades(self, db):
        # One unknown table must not drown the report in bogus
        # unknown-column errors for every reference in the query.
        report = SQLAnalyzer(db).analyze(
            "SELECT id, name, score FROM nope WHERE id > 1"
        )
        assert codes(report) == ["ANA002"]


class TestAggregateRules:
    def test_nested_aggregate_rejected(self, db):
        report = SQLAnalyzer(db).analyze("SELECT SUM(COUNT(*)) FROM t")
        assert "ANA006" in codes(report)

    def test_aggregate_in_group_by_rejected(self, db):
        report = SQLAnalyzer(db).analyze(
            "SELECT COUNT(*) FROM t GROUP BY SUM(id)"
        )
        assert "ANA006" in codes(report)

    def test_having_without_grouping_rejected(self, db):
        report = SQLAnalyzer(db).analyze("SELECT id FROM t HAVING id > 1")
        assert "ANA006" in codes(report)

    def test_sum_over_text_rejected(self, db):
        report = SQLAnalyzer(db).analyze("SELECT SUM(name) FROM t")
        assert "ANA008" in codes(report)

    def test_scalar_min_max_multiarg_ok(self, db):
        report = SQLAnalyzer(db).analyze("SELECT MAX(id, 7) FROM t")
        assert report.ok, report.render()

    def test_star_only_for_aggregates(self, db):
        report = SQLAnalyzer(db).analyze("SELECT UPPER(*) FROM t")
        assert "ANA007" in codes(report)


class TestCostEstimate:
    def test_lm_calls_scale_with_rows(self, db):
        db.register_udf("JUDGE", lambda v: "yes", expensive=True)
        report = SQLAnalyzer(db).analyze("SELECT JUDGE(name) FROM t")
        assert report.cost.lm_calls == 2
        assert report.cost.lm_tokens == report.cost.lm_prompt_tokens + (
            report.cost.lm_output_tokens
        )

    def test_join_multiplies_rows(self, db):
        db.register_udf("JUDGE", lambda v: "yes", expensive=True)
        report = SQLAnalyzer(db).analyze(
            "SELECT JUDGE(t.name) FROM t JOIN u ON t.id = u.id"
        )
        assert report.cost.lm_calls == 2 * 1
        assert report.cost.rows_scanned == 2 * 1

    def test_cheap_functions_cost_nothing(self, db):
        report = SQLAnalyzer(db).analyze("SELECT UPPER(name) FROM t")
        assert report.cost.lm_calls == 0

    def test_limit_caps_result_rows(self, db):
        report = SQLAnalyzer(db).analyze("SELECT id FROM t LIMIT 1")
        assert report.cost.result_rows == 1
        assert report.cost.rows_scanned == 2

    def test_ungrouped_aggregate_yields_one_row(self, db):
        report = SQLAnalyzer(db).analyze("SELECT COUNT(*) FROM t")
        assert report.cost.result_rows == 1

    def test_subquery_udf_calls_counted(self, db):
        db.register_udf("JUDGE", lambda v: "yes", expensive=True)
        report = SQLAnalyzer(db).analyze(
            "SELECT id FROM t WHERE id IN (SELECT id FROM t "
            "WHERE JUDGE(name) = 'yes')"
        )
        assert report.cost.lm_calls == 2
