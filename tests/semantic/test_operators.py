"""Unit tests for the semantic operators (sem_filter/topk/agg/map/join)."""

import pytest

from repro.errors import SemanticOperatorError
from repro.frame import DataFrame
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators
from repro.semantic.operators import fill, placeholders


@pytest.fixture()
def ops(oracle_lm) -> SemanticOperators:
    return SemanticOperators(oracle_lm, batch_size=8)


@pytest.fixture()
def cities() -> DataFrame:
    return DataFrame(
        {
            "City": [
                "Palo Alto",
                "Fresno",
                "Cupertino",
                "Sacramento",
                "San Jose",
            ]
        }
    )


@pytest.fixture()
def titles() -> DataFrame:
    return DataFrame(
        {
            "Title": [
                "What is your favorite statistics joke?",
                "Eigenvalue shrinkage in high-dimensional covariance "
                "estimation",
                "Book recommendations for learning statistics",
                "Backpropagation through a softmax-cross-entropy layer",
            ],
            "Views": [10, 20, 30, 40],
        }
    )


class TestInstructionTemplates:
    def test_placeholders(self):
        assert placeholders("{City} is in {Region}") == ["City", "Region"]

    def test_fill(self):
        assert fill("{City} is big", {"City": "Oslo"}) == "Oslo is big"

    def test_fill_unknown_placeholder(self):
        with pytest.raises(SemanticOperatorError):
            fill("{Nope}", {"City": "Oslo"})


class TestSemFilter:
    def test_filters_by_knowledge(self, ops, cities):
        kept = ops.sem_filter(
            cities, "{City} is a city in the Silicon Valley region"
        )
        assert sorted(kept["City"].tolist()) == [
            "Cupertino",
            "Palo Alto",
            "San Jose",
        ]

    def test_empty_frame_passthrough(self, ops):
        frame = DataFrame({"City": []})
        assert len(ops.sem_filter(frame, "{City} is big")) == 0

    def test_requires_placeholder(self, ops, cities):
        with pytest.raises(SemanticOperatorError):
            ops.sem_filter(cities, "no placeholders here")

    def test_unknown_column_rejected(self, ops, cities):
        with pytest.raises(SemanticOperatorError):
            ops.sem_filter(cities, "{Town} is nice")

    def test_batching_used(self, cities):
        lm = SimulatedLM(LMConfig(seed=0))
        ops = SemanticOperators(lm, batch_size=8)
        ops.sem_filter(cities, "{City} is a city in the Bay Area region")
        assert lm.usage.calls == 5
        assert lm.usage.batches == 1


class TestSemTopK:
    def test_orders_by_criterion(self, ops, titles):
        top = ops.sem_topk(
            titles, "Which {Title} is most technical?", 2
        )
        assert len(top) == 2
        assert "Eigenvalue" in top["Title"][0] or (
            "Backpropagation" in top["Title"][0]
        )
        assert all(
            "joke" not in title for title in top["Title"].tolist()
        )

    def test_k_larger_than_frame(self, ops, titles):
        everything = ops.sem_topk(
            titles, "Which {Title} is most technical?", 10
        )
        assert len(everything) == 4

    def test_single_row_shortcut(self, ops):
        one = DataFrame({"Title": ["only one"]})
        assert len(ops.sem_topk(one, "Which {Title} is best?", 1)) == 1

    def test_invalid_k(self, ops, titles):
        with pytest.raises(SemanticOperatorError):
            ops.sem_topk(titles, "Which {Title} is best?", 0)

    def test_other_columns_preserved(self, ops, titles):
        top = ops.sem_topk(
            titles, "Which {Title} is most technical?", 1
        )
        assert top["Views"][0] in (10, 20, 30, 40)


class TestSemAgg:
    def test_structured_summary(self, ops):
        frame = DataFrame(
            {
                "year": list(range(1999, 2018)),
                "round": [2] * 19,
            }
        )
        answer = ops.sem_agg(frame, "Provide information about races")
        assert "1999" in answer and "2017" in answer

    def test_column_restriction(self, ops, titles):
        answer = ops.sem_agg(
            titles, "Summarize the titles", columns=["Title"]
        )
        assert "Views" not in answer

    def test_unknown_column(self, ops, titles):
        with pytest.raises(SemanticOperatorError):
            ops.sem_agg(titles, "Summarize", columns=["Nope"])

    def test_empty_frame(self, ops):
        assert ops.sem_agg(DataFrame({"a": []}), "Summarize") == ""

    def test_hierarchical_fold_for_large_frames(self):
        lm = SimulatedLM(LMConfig(seed=0))
        ops = SemanticOperators(lm, batch_size=8)
        frame = DataFrame({"v": [f"value {i}" for i in range(100)]})
        answer = ops.sem_agg(frame, "Summarize the values")
        assert answer
        assert lm.usage.calls > 1  # folded in chunks


class TestSemMap:
    def test_judge_mode(self, ops, cities):
        mapped = ops.sem_map(
            cities,
            "{City} is a city in the Silicon Valley region",
            "in_sv",
            mode="judge",
        )
        lookup = dict(zip(mapped["City"], mapped["in_sv"]))
        assert lookup["Palo Alto"] is True
        assert lookup["Fresno"] is False

    def test_score_mode(self, ops, titles):
        mapped = ops.sem_map(
            titles,
            "The title '{Title}' is technical",
            "tech",
            mode="score",
        )
        assert all(isinstance(v, float) for v in mapped["tech"].tolist())

    def test_invalid_mode(self, ops, cities):
        with pytest.raises(SemanticOperatorError):
            ops.sem_map(cities, "{City} x", "out", mode="nope")

    def test_does_not_mutate_input(self, ops, cities):
        ops.sem_map(cities, "{City} is big", "out")
        assert "out" not in cities.columns


class TestSemJoin:
    def test_joins_on_judgment(self, ops):
        players = DataFrame({"height": [170.0, 195.0]})
        people = DataFrame({"person": ["Stephen Curry"]})
        joined = ops.sem_join(
            players,
            people,
            "a player with height {height} is taller than {person}",
        )
        assert joined["height"].tolist() == [195.0]

    def test_column_collision_rejected(self, ops):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        with pytest.raises(SemanticOperatorError):
            ops.sem_join(a, b, "{x} matches {x}")

    def test_pair_budget_enforced(self, ops):
        a = DataFrame({"u": list(range(60))})
        b = DataFrame({"w": list(range(60))})
        with pytest.raises(SemanticOperatorError):
            ops.sem_join(a, b, "{u} relates to {w}", max_pairs=100)

    def test_empty_result_keeps_columns(self, ops):
        players = DataFrame({"height": [150.0]})
        people = DataFrame({"person": ["Stephen Curry"]})
        joined = ops.sem_join(
            players,
            people,
            "a player with height {height} is taller than {person}",
        )
        assert joined.columns == ["height", "person"]
        assert joined.empty
