"""Unit tests for the batching engine and topk strategies."""

import pytest

from repro.errors import SemanticOperatorError
from repro.frame import DataFrame
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticEngine, SemanticOperators
from repro.semantic.engine import _parse_float


class TestEngine:
    def test_batch_size_validated(self, lm):
        with pytest.raises(ValueError):
            SemanticEngine(lm, batch_size=0)

    def test_judge_batches_respect_batch_size(self):
        lm = SimulatedLM(LMConfig(seed=0))
        engine = SemanticEngine(lm, batch_size=3)
        conditions = [
            f"{city} is a city in the Bay Area region"
            for city in (
                "Oakland", "Fresno", "Napa", "San Jose", "Anaheim",
                "Berkeley", "Irvine",
            )
        ]
        verdicts = engine.judge(conditions)
        assert len(verdicts) == 7
        assert lm.usage.batches == 3  # ceil(7 / 3)

    def test_score_parses_floats(self, lm):
        engine = SemanticEngine(lm)
        scores = engine.score("most technical", ["SGD", "picnic"])
        assert all(isinstance(score, float) for score in scores)

    def test_compare_returns_bools(self, lm):
        engine = SemanticEngine(lm)
        outcomes = engine.compare(
            "most technical",
            [("Bayesian covariance eigenvalues", "lunch plans")],
        )
        assert outcomes == [True]

    def test_parse_float_fallback(self):
        assert _parse_float("0.5") == 0.5
        assert _parse_float("not a number") == 0.0

    def test_summarize_batch_matches_individual(self, lm):
        engine = SemanticEngine(lm)
        chunks = [["a: 1", "a: 2"], ["a: 3", "a: 4"]]
        batched = engine.summarize_batch("Summarize", chunks)
        individual = [
            engine.summarize("Summarize", chunk) for chunk in chunks
        ]
        assert batched == individual


class TestTopKStrategies:
    @pytest.fixture()
    def titles(self) -> DataFrame:
        return DataFrame(
            {
                "Title": [
                    "Weekend reading suggestions",
                    "Eigenvalue shrinkage in covariance estimation",
                    "Favorite statistics jokes",
                    "Backpropagation through softmax layers",
                    "Coffee anecdotes welcome",
                ]
            }
        )

    def test_score_strategy_single_batch(self, titles):
        lm = SimulatedLM(LMConfig(seed=0))
        ops = SemanticOperators(lm, batch_size=32)
        top = ops.sem_topk(
            titles, "Which {Title} is most technical?", 2, method="score"
        )
        assert len(top) == 2
        assert lm.usage.calls == 5
        assert lm.usage.batches == 1

    def test_strategies_agree_on_clear_winner(self, titles):
        lm = SimulatedLM(LMConfig(seed=0))
        ops = SemanticOperators(lm, batch_size=32)
        quick = ops.sem_topk(
            titles, "Which {Title} is most technical?", 1
        )
        score = ops.sem_topk(
            titles, "Which {Title} is most technical?", 1, method="score"
        )
        assert quick["Title"][0] == score["Title"][0]

    def test_invalid_method(self, titles, lm):
        ops = SemanticOperators(lm)
        with pytest.raises(SemanticOperatorError):
            ops.sem_topk(titles, "Which {Title}?", 1, method="bogus")
