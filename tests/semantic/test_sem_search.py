"""Unit tests for sem_search."""

import pytest

from repro.errors import SemanticOperatorError
from repro.frame import DataFrame
from repro.semantic import SemanticOperators


@pytest.fixture()
def ops(lm) -> SemanticOperators:
    return SemanticOperators(lm, batch_size=8)


@pytest.fixture()
def posts() -> DataFrame:
    return DataFrame(
        {
            "Id": [1, 2, 3, 4],
            "Title": [
                "Bootstrap confidence intervals for the median",
                "Weekend reading suggestions, nothing too heavy",
                "Cross-validation strategies for time series data",
                "How do you explain p-values to your boss?",
            ],
        }
    )


class TestSemSearch:
    def test_finds_relevant_rows_first(self, ops, posts):
        found = ops.sem_search(
            posts,
            "bootstrap confidence intervals",
            text_column="Title",
            k=2,
        )
        assert found["Id"][0] == 1

    def test_k_caps_results(self, ops, posts):
        assert len(ops.sem_search(posts, "q", "Title", k=2)) == 2
        assert len(ops.sem_search(posts, "q", "Title", k=99)) == 4

    def test_empty_frame(self, ops):
        frame = DataFrame({"Title": []})
        assert ops.sem_search(frame, "q", "Title").empty

    def test_invalid_k(self, ops, posts):
        with pytest.raises(SemanticOperatorError):
            ops.sem_search(posts, "q", "Title", k=0)

    def test_unknown_column(self, ops, posts):
        with pytest.raises(SemanticOperatorError):
            ops.sem_search(posts, "q", "Body")

    def test_uses_batched_relevance_calls(self, lm, posts):
        ops = SemanticOperators(lm, batch_size=8)
        ops.sem_search(posts, "time series", "Title", k=1)
        assert lm.usage.calls == 4
        assert lm.usage.batches == 1


class TestSemAggBy:
    @pytest.fixture()
    def races(self) -> DataFrame:
        return DataFrame(
            {
                "circuit": ["Sepang", "Sepang", "Monza", "Monza", "Monza"],
                "year": [1999, 2000, 1999, 2000, 2001],
            }
        )

    def test_one_summary_per_group(self, ops, races):
        out = ops.sem_agg_by(
            races, "Summarize the seasons", by="circuit"
        )
        assert out.columns == ["circuit", "summary"]
        assert out["circuit"].tolist() == ["Sepang", "Monza"]
        sepang, monza = out["summary"].tolist()
        assert "1999" in sepang and "2000" in sepang
        assert "2001" in monza and "2001" not in sepang

    def test_column_restriction_and_output_name(self, ops, races):
        out = ops.sem_agg_by(
            races,
            "Summarize",
            by="circuit",
            columns=["year"],
            output_column="digest",
        )
        assert "digest" in out.columns
        assert "circuit:" not in out["digest"][0]

    def test_unknown_group_column(self, ops, races):
        with pytest.raises(SemanticOperatorError):
            ops.sem_agg_by(races, "Summarize", by="nope")
