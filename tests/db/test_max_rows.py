"""Metered ``max_rows`` truncation: row caps are never silent.

The executor's row cap used to slice results after the engine returned
them — invisible to accounting, so a capped answer looked identical to
a complete one.  Truncation now happens inside the engine, mirrored
into the bound :class:`~repro.lm.usage.Usage` and metrics registry and
surfaced on EXPLAIN ANALYZE output.
"""

from repro.core import SQLExecutor
from repro.lm.usage import Usage
from repro.obs import MetricsRegistry


class TestEngineTruncation:
    def test_execute_meters_dropped_rows(self, movies_db):
        usage = Usage()
        metrics = MetricsRegistry()
        movies_db.bind_udf_meters(usage=usage, metrics=metrics)
        result = movies_db.execute("SELECT title FROM movies", max_rows=2)
        assert len(result.rows) == 2
        assert usage.rows_truncated == 4  # 6 movies, kept 2
        assert (
            metrics.counter("repro_exec_rows_truncated_total").value == 4
        )

    def test_uncapped_execution_meters_nothing(self, movies_db):
        usage = Usage()
        movies_db.bind_udf_meters(usage=usage)
        movies_db.execute("SELECT title FROM movies")
        movies_db.execute("SELECT title FROM movies LIMIT 2", max_rows=6)
        assert usage.rows_truncated == 0

    def test_unbound_database_still_truncates(self, movies_db):
        result = movies_db.execute("SELECT title FROM movies", max_rows=1)
        assert len(result.rows) == 1

    def test_explain_analyze_reports_truncation(self, movies_db):
        analyzed = movies_db.explain_analyze(
            "SELECT title FROM movies", max_rows=2
        )
        assert analyzed.truncated == (2, 6)
        assert (
            "Result truncated: kept 2 of 6 rows (max_rows=2)"
            in analyzed.render()
        )

    def test_explain_analyze_no_truncation_no_note(self, movies_db):
        analyzed = movies_db.explain_analyze("SELECT title FROM movies")
        assert analyzed.truncated is None
        assert "Result truncated" not in analyzed.render()


class TestExecutorUsesEngineCap:
    def test_sql_executor_cap_is_metered(self, movies_db):
        usage = Usage()
        movies_db.bind_udf_meters(usage=usage)
        records = SQLExecutor(movies_db, max_rows=2).execute(
            "SELECT * FROM movies"
        )
        assert len(records) == 2
        assert usage.rows_truncated == 4

    def test_analyzing_executor_meters_once(self, movies_db):
        """The analyze=True path goes through EXPLAIN ANALYZE; the cap
        must not be double-counted."""
        usage = Usage()
        movies_db.bind_udf_meters(usage=usage)
        records = SQLExecutor(movies_db, analyze=True, max_rows=2).execute(
            "SELECT title FROM movies"
        )
        assert len(records) == 2
        assert usage.rows_truncated == 4
