"""Planner edge cases: pushdown safety, aliases, mixed constructs."""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.errors import PlanningError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        TableSchema(
            "l",
            [
                Column("id", DataType.INTEGER),
                Column("v", DataType.INTEGER),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "r",
            [
                Column("id", DataType.INTEGER),
                Column("w", DataType.INTEGER),
            ],
        )
    )
    database.insert("l", [[1, 10], [2, 20], [3, None]])
    database.insert("r", [[1, 100], [1, 101], [4, 400]])
    return database


class TestLeftJoinPushdownSafety:
    def test_where_on_right_side_not_pushed_into_left_join(self, db):
        # Pushing `r.w > 0` into the right side of a LEFT JOIN must not
        # change semantics (rows with NULL w must still be filtered by
        # WHERE, not resurrected as unmatched left rows).
        sql = (
            "SELECT l.id, r.w FROM l LEFT JOIN r ON l.id = r.id "
            "WHERE r.w > 100 ORDER BY 1, 2"
        )
        assert db.execute(sql, optimize=True).rows == (
            db.execute(sql, optimize=False).rows
        )

    def test_left_join_null_padding(self, db):
        result = db.execute(
            "SELECT l.id, r.w FROM l LEFT JOIN r ON l.id = r.id "
            "ORDER BY 1, 2"
        )
        assert (2, None) in result.rows
        assert (3, None) in result.rows

    def test_is_null_on_left_join_for_anti_join(self, db):
        result = db.execute(
            "SELECT l.id FROM l LEFT JOIN r ON l.id = r.id "
            "WHERE r.id IS NULL ORDER BY 1"
        )
        assert result.rows == [(2,), (3,)]


class TestAliasesAndNames:
    def test_duplicate_output_names_allowed(self, db):
        result = db.execute("SELECT v, v FROM l WHERE id = 1")
        assert result.rows == [(10, 10)]
        assert result.columns == ["v", "v"]

    def test_expression_output_names(self, db):
        result = db.execute("SELECT v + 1, COUNT(*) FROM l GROUP BY v")
        assert result.columns[0] == "binaryop"
        assert result.columns[1] == "COUNT(*)"

    def test_subquery_alias_scopes_columns(self, db):
        result = db.execute(
            "SELECT s.total FROM (SELECT SUM(v) AS total FROM l) s"
        )
        assert result.rows == [(30,)]

    def test_table_alias_hides_original_name(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT l.v FROM l AS x")


class TestAggregateEdgeCases:
    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT id % 2, COUNT(*) FROM l GROUP BY id % 2 ORDER BY 1"
        )
        assert result.rows == [(0, 1), (1, 2)]

    def test_aggregate_of_expression(self, db):
        result = db.execute("SELECT SUM(v * 2) FROM l")
        assert result.rows == [(60,)]

    def test_nested_aggregate_in_case(self, db):
        result = db.execute(
            "SELECT CASE WHEN COUNT(*) > 2 THEN 'many' ELSE 'few' END "
            "FROM l"
        )
        assert result.rows == [("many",)]

    def test_count_distinct_with_nulls(self, db):
        assert db.execute(
            "SELECT COUNT(DISTINCT v) FROM l"
        ).scalar() == 2

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT v FROM l ORDER BY 3")

    def test_group_by_position_out_of_range(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT v FROM l GROUP BY 9")

    def test_limit_must_be_constant_integer(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT v FROM l LIMIT 'x'")


class TestSetOperandEdgeCases:
    def test_in_list_with_null_semantics(self, db):
        # v NOT IN (10, NULL) is never true (NULL poisons NOT IN).
        result = db.execute(
            "SELECT COUNT(*) FROM l WHERE v NOT IN (10, NULL)"
        )
        assert result.rows == [(0,)]

    def test_empty_table_aggregate_via_where(self, db):
        result = db.execute(
            "SELECT MAX(v), MIN(v), AVG(v) FROM l WHERE id > 99"
        )
        assert result.rows == [(None, None, None)]

    def test_exists_false_branch(self, db):
        result = db.execute(
            "SELECT 1 WHERE EXISTS (SELECT 1 FROM l WHERE id > 99)"
        )
        assert result.rows == []

    def test_scalar_subquery_empty_is_null(self, db):
        result = db.execute(
            "SELECT (SELECT v FROM l WHERE id = 99) IS NULL"
        )
        assert result.rows == [(True,)]


class TestInsertStatements:
    def test_sql_insert_with_columns(self, db):
        outcome = db.execute("INSERT INTO l (id, v) VALUES (9, 90)")
        assert outcome.rows == [(1,)]
        assert db.execute(
            "SELECT v FROM l WHERE id = 9"
        ).scalar() == 90

    def test_sql_insert_expressions_evaluated(self, db):
        db.execute("INSERT INTO l VALUES (10, 5 * 8)")
        assert db.execute(
            "SELECT v FROM l WHERE id = 10"
        ).scalar() == 40

    def test_create_table_then_query(self, db):
        db.execute("CREATE TABLE fresh (a INTEGER, b TEXT NOT NULL)")
        db.execute("INSERT INTO fresh VALUES (1, 'x')")
        assert db.execute("SELECT b FROM fresh").scalar() == "x"
