"""Unit tests for UPDATE and DELETE statements."""

import pytest

from repro.db import Database
from repro.errors import SchemaError, SQLSyntaxError


class TestUpdate:
    def test_update_with_where(self, movies_db):
        outcome = movies_db.execute(
            "UPDATE movies SET genre = 'Classic' WHERE year < 1950"
        )
        assert outcome.rows == [(1,)]
        assert movies_db.execute(
            "SELECT genre FROM movies WHERE title = 'Casablanca'"
        ).scalar() == "Classic"

    def test_update_expression_uses_old_row(self, movies_db):
        movies_db.execute(
            "UPDATE movies SET revenue = revenue * 2 WHERE id = 4"
        )
        assert movies_db.execute(
            "SELECT revenue FROM movies WHERE id = 4"
        ).scalar() == pytest.approx(20.4)

    def test_update_all_rows(self, movies_db):
        outcome = movies_db.execute("UPDATE movies SET year = year + 1")
        assert outcome.rows == [(6,)]

    def test_multi_assignment(self, movies_db):
        movies_db.execute(
            "UPDATE movies SET genre = 'X', year = 2000 WHERE id = 1"
        )
        result = movies_db.execute(
            "SELECT genre, year FROM movies WHERE id = 1"
        )
        assert result.rows == [("X", 2000)]

    def test_update_coerces_types(self, movies_db):
        movies_db.execute("UPDATE movies SET year = '1955' WHERE id = 1")
        assert movies_db.execute(
            "SELECT year FROM movies WHERE id = 1"
        ).scalar() == 1955

    def test_update_violating_pk_rejected(self, movies_db):
        with pytest.raises(SchemaError):
            movies_db.execute("UPDATE movies SET id = 1 WHERE id = 2")

    def test_update_preserves_indexes(self, movies_db):
        movies_db.create_index("movies", "genre")
        movies_db.execute(
            "UPDATE movies SET genre = 'Epic' WHERE title = 'Titanic'"
        )
        assert movies_db.table("movies").lookup("genre", "Epic")

    def test_update_null_semantics_in_where(self, movies_db):
        # NULL revenue rows never satisfy revenue > 0.
        outcome = movies_db.execute(
            "UPDATE movies SET genre = 'Seen' WHERE revenue > 0"
        )
        assert outcome.rows == [(5,)]


class TestDelete:
    def test_delete_with_where(self, movies_db):
        outcome = movies_db.execute(
            "DELETE FROM movies WHERE genre = 'SciFi'"
        )
        assert outcome.rows == [(2,)]
        assert movies_db.execute(
            "SELECT COUNT(*) FROM movies"
        ).scalar() == 4

    def test_delete_without_where_clears_table(self, movies_db):
        outcome = movies_db.execute("DELETE FROM movies")
        assert outcome.rows == [(6,)]
        assert movies_db.execute(
            "SELECT COUNT(*) FROM movies"
        ).scalar() == 0

    def test_delete_reindexes(self, movies_db):
        movies_db.create_index("movies", "genre")
        movies_db.execute("DELETE FROM movies WHERE genre = 'Romance'")
        assert movies_db.table("movies").lookup("genre", "Romance") == []

    def test_pk_reusable_after_delete(self, movies_db):
        movies_db.execute("DELETE FROM movies WHERE id = 1")
        movies_db.execute(
            "INSERT INTO movies VALUES (1, 'New', 'Drama', 1.0, 2024)"
        )
        assert movies_db.execute(
            "SELECT title FROM movies WHERE id = 1"
        ).scalar() == "New"


class TestSyntax:
    def test_update_requires_set(self, movies_db):
        with pytest.raises(SQLSyntaxError):
            movies_db.execute("UPDATE movies genre = 'X'")

    def test_delete_requires_from(self, movies_db):
        with pytest.raises(SQLSyntaxError):
            movies_db.execute("DELETE movies")
