"""Batched UDF execution: equivalence with the per-row oracle path.

The per-row path (``udf_batch_size=None``) is the correctness oracle;
the batched path must produce identical rows, identical order, and
identical error behaviour for every query, batch size, and dataset.
Property tests sweep ``udf_batch_size in {1, 7, 64}`` over random
duplicate-heavy tables and a pool of query shapes covering WHERE,
SELECT, ORDER BY, CASE/COALESCE nesting, and nested UDF calls.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema
from repro.errors import ExecutionError

BATCH_SIZES = [1, 7, 64]

WORDS = ["apple", "banana", "cherry", "plum", "fig"]


class CountingUDF:
    """Deterministic expensive UDF with scalar and batch forms.

    The batch form reuses the scalar body per tuple, so the two forms
    agree by construction; invocation counts let tests assert the
    batched path really deduplicates.
    """

    def __init__(self, fail_on: str | None = None):
        self.scalar_calls = 0
        self.batch_calls = 0
        self.batch_tuples = 0
        self.fail_on = fail_on

    def _judge(self, value):
        if value is None:
            return None
        if self.fail_on is not None and value == self.fail_on:
            raise ValueError(f"cannot judge {value!r}")
        return str(value).upper()

    def scalar(self, value):
        self.scalar_calls += 1
        return self._judge(value)

    def batch(self, tuples):
        self.batch_calls += 1
        self.batch_tuples += len(tuples)
        return [self._judge(value) for (value,) in tuples]


def make_database(rows, udf: CountingUDF, with_batch=True) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("s", DataType.TEXT),
                Column("n", DataType.INTEGER),
            ],
        )
    )
    db.insert("t", rows)
    db.register_udf(
        "SLOW",
        udf.scalar,
        expensive=True,
        batch=udf.batch if with_batch else None,
    )
    return db


@st.composite
def tables(draw):
    row_count = draw(st.integers(min_value=0, max_value=40))
    return [
        (
            draw(st.sampled_from(WORDS + [None])),
            draw(st.one_of(st.none(), st.integers(-5, 5))),
        )
        for _ in range(row_count)
    ]


QUERIES = [
    "SELECT s, n FROM t WHERE SLOW(s) = 'APPLE'",
    "SELECT SLOW(s) FROM t",
    "SELECT s, SLOW(s), n FROM t WHERE SLOW(s) <> 'FIG' AND n > 0",
    "SELECT n FROM t WHERE COALESCE(SLOW(s), 'none') = 'none'",
    "SELECT s FROM t WHERE CASE WHEN SLOW(s) = 'PLUM' THEN 1 "
    "ELSE 0 END = 0 ORDER BY n, s",
    "SELECT SLOW(s) AS j, COUNT(*) AS c FROM t GROUP BY s "
    "ORDER BY c DESC, j",
    "SELECT s FROM t WHERE SLOW(SLOW(s)) = 'APPLE'",
    "SELECT DISTINCT SLOW(s) FROM t ORDER BY 1",
    "SELECT s, n FROM t WHERE n >= 0 AND SLOW(s) = 'BANANA' "
    "ORDER BY n DESC LIMIT 5",
]


def run_oracle(rows, sql):
    """The per-row path; returns (columns, rows) or the error string.

    ``udf_batch_size=None`` pins per-row execution explicitly — the
    default is the optimizer's auto route, which would not be an
    independent oracle.
    """
    udf = CountingUDF()
    db = make_database(rows, udf)
    try:
        result = db.execute(sql, udf_batch_size=None)
    except ExecutionError as error:
        return ("error", str(error))
    return (result.columns, result.rows)


def run_batched(rows, sql, batch_size, with_batch=True):
    udf = CountingUDF()
    db = make_database(rows, udf, with_batch=with_batch)
    try:
        result = db.execute(sql, udf_batch_size=batch_size)
    except ExecutionError as error:
        return ("error", str(error))
    return (result.columns, result.rows)


class TestEquivalence:
    @given(rows=tables(), query=st.sampled_from(QUERIES))
    @settings(max_examples=60, deadline=None)
    def test_batched_path_matches_oracle(self, rows, query):
        expected = run_oracle(rows, query)
        for batch_size in BATCH_SIZES:
            assert run_batched(rows, query, batch_size) == expected

    @given(rows=tables(), query=st.sampled_from(QUERIES))
    @settings(max_examples=30, deadline=None)
    def test_batched_path_without_batch_form_matches_oracle(
        self, rows, query
    ):
        expected = run_oracle(rows, query)
        assert run_batched(rows, query, 7, with_batch=False) == expected

    @given(rows=tables())
    @settings(max_examples=30, deadline=None)
    def test_dedup_never_calls_more_than_distinct_values(self, rows):
        udf = CountingUDF()
        db = make_database(rows, udf)
        db.execute("SELECT SLOW(s) FROM t", udf_batch_size=64)
        distinct = len({s for s, _ in rows})
        assert udf.scalar_calls == 0
        assert udf.batch_tuples <= distinct


class TestErrorEquivalence:
    ROWS = [("apple", 1), ("banana", 2), ("poison", 3), ("fig", 4)]

    def _oracle_error(self, sql):
        udf = CountingUDF(fail_on="poison")
        db = make_database(self.ROWS, udf)
        with pytest.raises(ExecutionError) as caught:
            db.execute(sql, udf_batch_size=None)
        return str(caught.value)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_udf_error_is_identical(self, batch_size):
        sql = "SELECT s FROM t WHERE SLOW(s) = 'APPLE'"
        expected = self._oracle_error(sql)
        udf = CountingUDF(fail_on="poison")
        db = make_database(self.ROWS, udf)
        with pytest.raises(ExecutionError) as caught:
            db.execute(sql, udf_batch_size=batch_size)
        assert str(caught.value) == expected
        assert "error in function SLOW" in expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_rows_before_the_failing_row_still_stream(self, batch_size):
        """Lazy prefix equivalence: rows ahead of the error are yielded."""
        udf = CountingUDF(fail_on="poison")
        db = make_database(self.ROWS, udf)
        planner = db._planner(True, batch_size)
        from repro.db.sql import parse_statement

        plan, _ = planner.plan_select(
            parse_statement("SELECT s FROM t WHERE SLOW(s) <> 'X'")
        )
        produced = []
        with pytest.raises(ExecutionError):
            for row in plan.execute():
                produced.append(row)
        assert produced == [("apple",), ("banana",)]

    def test_errors_are_not_cached_across_statements(self):
        udf = CountingUDF(fail_on="poison")
        db = make_database([("poison", 1)], udf)
        for _ in range(2):
            with pytest.raises(ExecutionError):
                db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert len(db.udf_cache) == 0

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_argument_error_is_identical(self, batch_size):
        """An error in the UDF's *argument* surfaces like the oracle's."""
        sql = "SELECT s FROM t WHERE SLOW(s || n) = 'X'"
        rows = [("apple", 1), ("banana", None), ("fig", 2)]
        udf = CountingUDF()
        db = make_database(rows, udf)
        oracle = db.execute(sql, udf_batch_size=None)
        udf2 = CountingUDF()
        db2 = make_database(rows, udf2)
        batched = db2.execute(sql, udf_batch_size=batch_size)
        assert batched.rows == oracle.rows


class TestMemoCache:
    def test_repeated_statements_are_served_from_the_cache(self):
        udf = CountingUDF()
        rows = [("apple", 1), ("banana", 2), ("apple", 3)]
        db = make_database(rows, udf)
        first = db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert udf.batch_tuples == 2  # apple, banana
        second = db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert udf.batch_tuples == 2  # fully memoized
        assert udf.scalar_calls == 0
        assert first.rows == second.rows

    def test_capacity_zero_disables_cross_statement_reuse(self):
        udf = CountingUDF()
        rows = [("apple", 1), ("apple", 2)]
        db = Database(udf_cache_capacity=0)
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("s", DataType.TEXT),
                    Column("n", DataType.INTEGER),
                ],
            )
        )
        db.insert("t", rows)
        db.register_udf(
            "SLOW", udf.scalar, expensive=True, batch=udf.batch
        )
        db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        # Intra-statement dedup still collapses duplicates, but nothing
        # carries across statements.
        assert udf.batch_tuples == 2

    def test_lru_evicts_least_recently_used(self):
        from repro.db.udfcache import UDFMemoCache

        cache = UDFMemoCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a") == (True, 1)  # promotes a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache


class TestPlanShapes:
    def test_case_nested_udf_is_deferred_and_batched(self):
        """Expensive calls inside CASE/COALESCE still defer + batch."""
        udf = CountingUDF()
        db = make_database([("apple", 1)], udf)
        for predicate in (
            "COALESCE(SLOW(s), 'z') = 'APPLE'",
            "CASE WHEN SLOW(s) = 'APPLE' THEN 1 ELSE 0 END = 1",
        ):
            rendered = db.explain(
                f"SELECT n FROM t WHERE n > 0 AND {predicate}",
                udf_batch_size=16,
            )
            lines = rendered.splitlines()
            batched = next(
                index
                for index, line in enumerate(lines)
                if "BatchedFilter(where[expensive]" in line
            )
            cheap = next(
                index
                for index, line in enumerate(lines)
                if "Filter(where)" in line
            )
            # Deferred: the expensive batched filter runs above (after)
            # the cheap predicate, which prunes rows first.
            assert batched < cheap

    def test_conditional_only_udf_falls_back_to_per_row(self):
        """No strict call site -> per-row Filter keeps short-circuits."""
        udf = CountingUDF()
        db = make_database([("apple", 1)], udf)
        rendered = db.explain(
            "SELECT n FROM t WHERE n > 0 OR SLOW(s) = 'APPLE'",
            udf_batch_size=16,
        )
        assert "BatchedFilter" not in rendered
        assert "Filter(where[expensive])" in rendered

    def test_projection_sites_are_shared_across_items(self):
        udf = CountingUDF()
        rows = [("apple", 1), ("banana", 2)]
        db = make_database(rows, udf)
        db.execute(
            "SELECT SLOW(s), SLOW(s) || '!' FROM t", udf_batch_size=8
        )
        assert udf.batch_tuples == 2  # one site, not one per item

    def test_default_path_is_auto_batched(self):
        # The optimizer owns the default: expensive UDFs route through
        # the batched operators with a cost-model-derived morsel size.
        udf = CountingUDF()
        db = make_database([("apple", 1)], udf)
        rendered = db.explain("SELECT SLOW(s) FROM t WHERE SLOW(s) = 'X'")
        assert "Batched" in rendered
        assert "Optimizer:" in rendered

    def test_pinned_none_path_is_unchanged(self):
        # udf_batch_size=None remains the per-row oracle escape hatch.
        udf = CountingUDF()
        db = make_database([("apple", 1)], udf)
        rendered = db.explain(
            "SELECT SLOW(s) FROM t WHERE SLOW(s) = 'X'",
            udf_batch_size=None,
        )
        assert "Batched" not in rendered

    def test_no_optimize_path_is_unchanged(self):
        # optimize=False disables the optimizer wholesale: "auto"
        # degrades to the per-row path and no footer is rendered.
        udf = CountingUDF()
        db = make_database([("apple", 1)], udf)
        rendered = db.explain(
            "SELECT SLOW(s) FROM t WHERE SLOW(s) = 'X'", optimize=False
        )
        assert "Batched" not in rendered
        assert "Optimizer:" not in rendered
