"""Unit tests for the SQL parser (AST construction)."""

import pytest

from repro.db.sql import ast
from repro.db.sql.parser import parse_select, parse_statement
from repro.errors import SQLSyntaxError


class TestSelectBasics:
    def test_simple_select(self):
        select = parse_select("SELECT a, b FROM t")
        assert [i.expression.name for i in select.items] == ["a", "b"]
        assert select.source == ast.TableSource("t")

    def test_trailing_semicolon_ok(self):
        parse_select("SELECT 1;")

    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        select = parse_select("SELECT a AS x, b y FROM t AS u")
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"
        assert select.source.alias == "u"

    def test_star_and_qualified_star(self):
        select = parse_select("SELECT *, t.* FROM t")
        assert select.items[0].expression == ast.Star()
        assert select.items[1].expression == ast.Star(table="t")

    def test_limit_offset(self):
        select = parse_select("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert select.limit == ast.Literal(5)
        assert select.offset == ast.Literal(2)

    def test_mysql_style_limit(self):
        select = parse_select("SELECT a FROM t LIMIT 2, 5")
        assert select.limit == ast.Literal(5)
        assert select.offset == ast.Literal(2)

    def test_order_by_directions(self):
        select = parse_select("SELECT a FROM t ORDER BY a DESC, b")
        assert select.order_by[0].ascending is False
        assert select.order_by[1].ascending is True

    def test_group_by_having(self):
        select = parse_select(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(select.group_by) == 1
        assert isinstance(select.having, ast.BinaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 2")


class TestJoins:
    def test_inner_join_with_on(self):
        select = parse_select("SELECT * FROM a JOIN b ON a.x = b.y")
        join = select.source
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_left_outer_join(self):
        select = parse_select(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y"
        )
        assert select.source.kind == "LEFT"

    def test_comma_join_is_cross(self):
        select = parse_select("SELECT * FROM a, b")
        assert select.source.kind == "CROSS"

    def test_chained_joins_left_associative(self):
        select = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = select.source
        assert isinstance(outer.left, ast.Join)
        assert outer.right == ast.TableSource("c")

    def test_subquery_in_from(self):
        select = parse_select("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(select.source, ast.SubquerySource)
        assert select.source.alias == "s"


class TestExpressions:
    def test_precedence_arithmetic(self):
        select = parse_select("SELECT 1 + 2 * 3")
        expression = select.items[0].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_precedence_and_or(self):
        select = parse_select("SELECT * FROM t WHERE a OR b AND c")
        assert select.where.op == "OR"

    def test_not_binds_tighter_than_and(self):
        select = parse_select("SELECT * FROM t WHERE NOT a AND b")
        assert select.where.op == "AND"
        assert select.where.left == ast.UnaryOp("NOT", ast.ColumnRef("a"))

    def test_comparison_normalisation(self):
        select = parse_select("SELECT * FROM t WHERE a != 1 AND b == 2")
        assert select.where.left.op == "<>"
        assert select.where.right.op == "="

    def test_between_and_not_between(self):
        where = parse_select(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 3"
        ).where
        assert where == ast.BetweenExpression(
            ast.ColumnRef("a"), ast.Literal(1), ast.Literal(3)
        )
        negated = parse_select(
            "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 3"
        ).where
        assert negated.negated

    def test_like_and_in_list(self):
        where = parse_select(
            "SELECT * FROM t WHERE a LIKE 'x%' AND b IN (1, 2)"
        ).where
        assert isinstance(where.left, ast.LikeExpression)
        assert isinstance(where.right, ast.InList)

    def test_in_subquery_and_exists(self):
        where = parse_select(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u) "
            "AND EXISTS (SELECT 1 FROM v)"
        ).where
        assert isinstance(where.left, ast.InSubquery)
        assert isinstance(where.right, ast.ExistsSubquery)

    def test_is_null_and_is_not_null(self):
        where = parse_select(
            "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL"
        ).where
        assert where.left == ast.IsNullExpression(ast.ColumnRef("a"))
        assert where.right.negated

    def test_case_with_operand(self):
        expression = parse_select(
            "SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END"
        ).items[0].expression
        assert isinstance(expression, ast.CaseExpression)
        assert expression.operand == ast.ColumnRef("a")

    def test_searched_case(self):
        expression = parse_select(
            "SELECT CASE WHEN a > 1 THEN 'x' END"
        ).items[0].expression
        assert expression.operand is None
        assert expression.default is None

    def test_case_requires_branch(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT CASE ELSE 1 END")

    def test_cast(self):
        expression = parse_select("SELECT CAST(a AS INTEGER)").items[0]
        assert expression.expression.type_name == "INTEGER"

    def test_function_calls(self):
        select = parse_select(
            "SELECT COUNT(*), COUNT(DISTINCT a), MAX(a, b)"
        )
        count_star, count_distinct, scalar_max = (
            item.expression for item in select.items
        )
        assert count_star.star
        assert count_distinct.distinct
        assert len(scalar_max.args) == 2

    def test_concat_operator(self):
        expression = parse_select("SELECT a || b").items[0].expression
        assert expression.op == "||"

    def test_scalar_subquery(self):
        expression = parse_select(
            "SELECT (SELECT MAX(a) FROM t)"
        ).items[0].expression
        assert isinstance(expression, ast.ScalarSubquery)

    def test_unary_minus(self):
        expression = parse_select("SELECT -a").items[0].expression
        assert expression == ast.UnaryOp("-", ast.ColumnRef("a"))


class TestCreateAndInsert:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "v VARCHAR(10), FOREIGN KEY (name) REFERENCES u(id))"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null
        assert statement.foreign_keys[0].parent_table == "u"

    def test_table_level_primary_key(self):
        statement = parse_statement(
            "CREATE TABLE t (a INTEGER, b TEXT, PRIMARY KEY (a))"
        )
        assert statement.columns[0].primary_key
        assert not statement.columns[1].primary_key

    def test_insert_with_columns_and_multiple_rows(self):
        statement = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_statement("INSERT INTO t VALUES (1)")
        assert statement.columns == ()
