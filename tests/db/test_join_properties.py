"""Property-based join algebra tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema

keys = st.one_of(st.none(), st.integers(0, 5))


@st.composite
def two_tables(draw):
    left = [
        (draw(keys), draw(st.integers(-9, 9)))
        for _ in range(draw(st.integers(0, 12)))
    ]
    right = [
        (draw(keys), draw(st.sampled_from(["x", "y", "z"])))
        for _ in range(draw(st.integers(0, 12)))
    ]
    return left, right


def _database(left_rows, right_rows) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "l",
            [Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)],
        )
    )
    db.create_table(
        TableSchema(
            "r",
            [Column("k", DataType.INTEGER), Column("w", DataType.TEXT)],
        )
    )
    db.insert("l", left_rows)
    db.insert("r", right_rows)
    return db


class TestJoinAlgebra:
    @given(two_tables())
    @settings(max_examples=50, deadline=None)
    def test_inner_join_commutative(self, tables):
        db = _database(*tables)
        forward = db.execute(
            "SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k "
            "ORDER BY 1, 2, 3"
        ).rows
        backward = db.execute(
            "SELECT l.k, l.v, r.w FROM r JOIN l ON r.k = l.k "
            "ORDER BY 1, 2, 3"
        ).rows
        assert forward == backward

    @given(two_tables())
    @settings(max_examples=50, deadline=None)
    def test_join_size_matches_key_multiplicity(self, tables):
        left_rows, right_rows = tables
        db = _database(left_rows, right_rows)
        joined = db.execute(
            "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k"
        ).scalar()
        expected = sum(
            sum(1 for rk, _ in right_rows if rk == lk)
            for lk, _ in left_rows
            if lk is not None
        )
        assert joined == expected

    @given(two_tables())
    @settings(max_examples=50, deadline=None)
    def test_left_join_supersets_inner(self, tables):
        db = _database(*tables)
        inner = db.execute(
            "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k"
        ).scalar()
        left = db.execute(
            "SELECT COUNT(*) FROM l LEFT JOIN r ON l.k = r.k"
        ).scalar()
        left_rows = db.execute("SELECT COUNT(*) FROM l").scalar()
        assert left >= inner
        assert left >= left_rows

    @given(two_tables())
    @settings(max_examples=50, deadline=None)
    def test_join_then_filter_equals_filter_then_join(self, tables):
        db = _database(*tables)
        late = db.execute(
            "SELECT l.k, l.v FROM l JOIN r ON l.k = r.k "
            "WHERE l.v > 0 ORDER BY 1, 2"
        ).rows
        early = db.execute(
            "SELECT s.k, s.v FROM (SELECT * FROM l WHERE v > 0) s "
            "JOIN r ON s.k = r.k ORDER BY 1, 2"
        ).rows
        assert late == early
