"""Golden EXPLAIN footers for every optimizer decision type, plus the
cost-monotonicity property.

Each decision rule (``route``, ``auto-batch-size``, ``cascade``,
``predicate-reorder``, ``selection-pushdown``) is pinned with the exact
rendered line, cost numbers included — the footer is the optimizer's
auditable rationale, so its numbers are part of the contract.

The monotonicity property closes the loop: the optimizer's chosen
route is priced by the same cost model as the per-row route, and the
chosen estimate must never exceed the per-row estimate (the route
picker takes a minimum that always includes per-row, so a violation
means the pricing broke).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema
from repro.lm import Usage
from repro.obs.metrics import MetricsRegistry

ROWS = [
    (index, ["Romance", "Action", "Drama"][index % 3], f"title{index % 4}")
    for index in range(12)
]


def build_database(cheap_tier=False) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("genre", DataType.TEXT),
                Column("title", DataType.TEXT),
            ],
        )
    )
    db.insert("t", ROWS)

    def scalar(value):
        return str(value).upper()

    def batch(tuples):
        return [str(value).upper() for (value,) in tuples]

    cheap = None
    if cheap_tier:

        def cheap(value):
            return str(value).upper() if "0" in str(value) else None

    db.register_udf(
        "SLOW", scalar, expensive=True, batch=batch, cheap=cheap
    )
    return db


REORDER_SQL = (
    "SELECT title FROM t WHERE genre = 'Romance' "
    "AND SLOW(title) = 'TITLE1'"
)

#: 12 rows, 3 distinct genres (sel 1/3 -> 4 rows), 4 distinct titles
#: (auto batch 4, batched bound 4 calls), 56 tokens/call.
GOLDEN_REORDER = """\
Optimizer:
  route: batched: est 4 LM calls / 224 tokens (per-row 12 calls / 672 tokens)
  auto-batch-size: udf_batch_size=4 from distinct-value bound 4 (rows_scanned=12)
  predicate-reorder: 1 cheap conjunct(s) (est sel 0.333, rows 12 -> 4) before 1 expensive conjunct(s) @ 56 tok/call; written order kept among expensive conjuncts"""

#: Cascade pricing: 4 cheap calls @ 14 tok + ceil(0.5 * 4) = 2
#: escalations @ 56 tok = 168 < 224 batched.
GOLDEN_CASCADE = """\
Optimizer:
  route: cascade: est 2 LM calls / 168 tokens (per-row 12 calls / 672 tokens)
  auto-batch-size: udf_batch_size=4 from distinct-value bound 4 (rows_scanned=12)
  cascade: cheap tier for SLOW: est escalation rate 0.50, 14 tok/cheap call vs 56 tok/call
  predicate-reorder: 1 cheap conjunct(s) (est sel 0.333, rows 12 -> 4) before 1 expensive conjunct(s) @ 56 tok/call; written order kept among expensive conjuncts"""


def footer(rendered: str) -> str:
    """The Optimizer: block of an EXPLAIN rendering."""
    position = rendered.index("Optimizer:")
    return rendered[position:]


class TestGoldenFooters:
    def test_predicate_reorder_and_auto_batch_size(self):
        db = build_database()
        assert footer(db.explain(REORDER_SQL)) == GOLDEN_REORDER

    def test_cascade(self):
        db = build_database(cheap_tier=True)
        assert footer(db.explain(REORDER_SQL)) == GOLDEN_CASCADE

    def test_pinned_per_row_route(self):
        db = build_database()
        rendered = db.explain(REORDER_SQL, udf_batch_size=None)
        assert footer(rendered) == (
            "Optimizer:\n"
            "  route: per-row (caller-pinned udf_batch_size=None): "
            "est 12 LM calls / 672 tokens\n"
            "  predicate-reorder: 1 cheap conjunct(s) (est sel 0.333, "
            "rows 12 -> 4) before 1 expensive conjunct(s) @ 56 "
            "tok/call; written order kept among expensive conjuncts"
        )

    def test_no_optimize_has_no_footer(self):
        db = build_database()
        assert "Optimizer:" not in db.explain(REORDER_SQL, optimize=False)

    def test_cheap_only_statement_has_no_footer(self):
        db = build_database()
        rendered = db.explain("SELECT title FROM t WHERE genre = 'Drama'")
        assert "Optimizer:" not in rendered

    def test_explain_analyze_carries_the_same_footer(self):
        db = build_database()
        analyzed = db.explain_analyze(REORDER_SQL)
        assert footer(analyzed.render()) == GOLDEN_REORDER


class TestSelectionPushdown:
    def build_join_database(self) -> Database:
        db = build_database()
        db.create_table(
            TableSchema(
                "g",
                [
                    Column("name", DataType.TEXT),
                    Column("boost", DataType.INTEGER),
                ],
            )
        )
        db.insert("g", [("Romance", 2), ("Action", 1)])
        return db

    def test_expensive_pushed_below_equi_join(self):
        # FK-shaped hash join: est output equals the bigger input, so
        # pushing the LM predicate below costs no extra calls and
        # prunes earlier.
        db = self.build_join_database()
        rendered = db.explain(
            "SELECT t.title FROM t JOIN g ON t.genre = g.name "
            "WHERE SLOW(t.title) = 'TITLE1'"
        )
        assert (
            "selection-pushdown: pushed SLOW(…) below INNER join "
            "(est rows 12 below vs 12 after join)"
        ) in rendered
        lines = rendered.splitlines()
        batched = next(
            i for i, line in enumerate(lines) if "BatchedFilter" in line
        )
        join = next(i for i, line in enumerate(lines) if "HashJoin" in line)
        assert batched > join  # deeper in the tree = below the join

    def test_expensive_held_above_selective_join(self):
        # Non-equi join against a tiny table: est output (product / 3)
        # is smaller than the scan side, so the LM predicate runs
        # above the join where fewer rows survive.
        db = self.build_join_database()
        rendered = db.explain(
            "SELECT t.title FROM t JOIN g ON t.id > g.boost "
            "WHERE SLOW(t.title) = 'TITLE1'"
        )
        assert (
            "selection-pushdown: held SLOW(…) above INNER join "
            "(est rows 8 after join vs 12 below)"
        ) in rendered
        lines = rendered.splitlines()
        batched = next(
            i for i, line in enumerate(lines) if "BatchedFilter" in line
        )
        join = next(
            i
            for i, line in enumerate(lines)
            if "NestedLoopJoin" in line
        )
        assert batched < join  # shallower = above the join

    def test_cheap_pushdown_is_recorded(self):
        db = self.build_join_database()
        rendered = db.explain(
            "SELECT t.title FROM t JOIN g ON t.genre = g.name "
            "WHERE g.boost > 1 AND SLOW(t.title) = 'TITLE1'"
        )
        assert (
            "selection-pushdown: pushed 1 cheap conjunct(s) below "
            "INNER join"
        ) in rendered


class TestDecisionMetering:
    def test_decisions_flow_to_usage_and_metrics(self):
        db = build_database()
        usage = Usage()
        metrics = MetricsRegistry()
        db.bind_udf_meters(usage=usage, metrics=metrics)
        db.execute(REORDER_SQL)
        assert usage.optimizer_decisions == 3  # route, batch, reorder
        snapshot = metrics.snapshot()
        assert snapshot["repro_optimizer_decisions_total"] == 3
        assert snapshot["repro_optimizer_route_total"] == 1
        assert snapshot["repro_optimizer_auto_batch_size_total"] == 1
        assert snapshot["repro_optimizer_predicate_reorder_total"] == 1

    def test_cheap_only_statements_meter_nothing(self):
        db = build_database()
        usage = Usage()
        db.bind_udf_meters(usage=usage)
        db.execute("SELECT title FROM t WHERE genre = 'Drama'")
        assert usage.optimizer_decisions == 0


class TestCostMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        conjuncts=st.lists(
            st.sampled_from(
                [
                    "genre = 'Romance'",
                    "genre <> 'Drama'",
                    "id > 5",
                    "SLOW(title) = 'TITLE1'",
                    "SLOW(genre) <> 'X'",
                ]
            ),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        cheap_tier=st.booleans(),
        requested=st.sampled_from(["auto", None, 3, 64]),
    )
    def test_chosen_estimate_never_exceeds_per_row(
        self, conjuncts, cheap_tier, requested
    ):
        if not any("SLOW" in conjunct for conjunct in conjuncts):
            conjuncts.append("SLOW(title) = 'TITLE1'")
        sql = "SELECT title FROM t WHERE " + " AND ".join(conjuncts)
        db = build_database(cheap_tier=cheap_tier)
        analyzed = db.explain_analyze(sql, udf_batch_size=requested)
        report = analyzed.optimizer
        assert report is not None
        if requested == "auto":
            # Auto never picks a plan priced above the unoptimized
            # per-row route; pinned routes are caller overrides.
            assert report.est_chosen_tokens <= report.est_per_row_tokens
            assert report.est_chosen_calls <= report.est_per_row_calls
            if report.udf_batch_size is not None:
                assert 1 <= report.udf_batch_size <= 256
        assert report.route in ("per-row", "batched", "cascade")
