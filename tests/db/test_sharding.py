"""Sharded parallel execution: equivalence, pruning, and determinism.

The unsharded plan is the correctness oracle; the exchange path must
produce identical rows, identical order, identical error behaviour,
and identical *shared counters* for every shard count and worker
count.  The invariance contract covers ``calls``, token counters, and
all cache counters — but deliberately not ``batches`` or
``simulated_seconds``: coalescing concurrent shards' morsels into
bigger flush batches is the speedup, so those two vary (deterministically)
per (shards, workers) cell.  See DESIGN.md §16.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, PartitionSpec, TableSchema
from repro.errors import ExecutionError, SchemaError
from repro.lm.model import SimulatedLM
from repro.lm.udf import register_llm_judge
from repro.obs import racecheck
from repro.obs.metrics import MetricsRegistry
from repro.obs.racecheck import RaceChecker
from repro.serve.batching import BatchingLM

CELLS = [(1, 1), (1, 4), (2, 1), (2, 4), (8, 1), (8, 4)]

UDF_SQL = "SELECT s, LLM('a positive review', s) AS judged FROM t ORDER BY n"

#: Usage fields the exchange must keep byte-identical at any shard and
#: worker count.  ``batches`` / ``simulated_seconds`` are excluded on
#: purpose — batch composition is what sharding changes.
INVARIANT_USAGE = (
    "calls",
    "prompt_tokens",
    "output_tokens",
    "cache_hits",
    "cache_misses",
    "udf_cache_hits",
    "udf_cache_misses",
)


def usage_fingerprint(usage) -> dict:
    return {name: getattr(usage, name) for name in INVARIANT_USAGE}


def make_table(rows) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("n", DataType.INTEGER),
                Column("s", DataType.TEXT),
            ],
        )
    )
    if rows:
        db.insert("t", rows)
    return db


def judged_rows(rows, shards, workers, sql=UDF_SQL, udf_batch_size=8):
    """One execution through the LM-judge stack; returns rows + usage."""
    db = make_table(rows)
    lm = BatchingLM(SimulatedLM())
    register_llm_judge(db, lm)
    if shards is not None:
        db.set_partitioning("t", "n", shards=shards)
        db.configure_sharding(workers=workers, lm=lm)
    result = db.execute(sql, udf_batch_size=udf_batch_size)
    return result.rows, usage_fingerprint(lm.usage)


class CountingUDF:
    """Deterministic expensive UDF with scalar and batch forms."""

    def __init__(self, fail_on=None):
        self.batch_calls = 0
        self.batch_tuples = 0
        self.fail_on = fail_on

    def _judge(self, value):
        if value is None:
            return None
        if self.fail_on is not None and value == self.fail_on:
            raise ValueError(f"cannot judge {value!r}")
        return str(value).upper()

    def scalar(self, value):
        return self._judge(value)

    def batch(self, tuples):
        self.batch_calls += 1
        self.batch_tuples += len(tuples)
        return [self._judge(value) for (value,) in tuples]


def make_udf_db(rows, udf) -> Database:
    db = make_table(rows)
    db.register_udf("SLOW", udf.scalar, expensive=True, batch=udf.batch)
    return db


ROWS = [(i, f"value {i % 7}") for i in range(40)]


class TestPartitionSpec:
    def test_hash_is_stable_and_in_range(self):
        spec = PartitionSpec.hashed("k", 8)
        for value in ("a", "b", 3, 2.5, "a"):
            shard = spec.shard_of(value)
            assert 0 <= shard < 8
            assert shard == spec.shard_of(value)

    def test_hash_is_type_canonical(self):
        # 1 and 1.0 compare equal in SQL; they must co-locate.
        spec = PartitionSpec.hashed("k", 8)
        assert spec.shard_of(1) == spec.shard_of(1.0)

    def test_null_lands_on_shard_zero(self):
        assert PartitionSpec.hashed("k", 8).shard_of(None) == 0
        assert PartitionSpec.ranged("k", (10,)).shard_of(None) == 0

    def test_range_boundaries(self):
        spec = PartitionSpec.ranged("k", (10, 20))
        assert spec.shards == 3
        assert spec.shard_of(9) == 0
        assert spec.shard_of(10) == 1
        assert spec.shard_of(19) == 1
        assert spec.shard_of(20) == 2

    def test_range_bounds_must_strictly_increase(self):
        with pytest.raises(SchemaError):
            PartitionSpec.ranged("k", (10, 10))
        with pytest.raises(SchemaError):
            PartitionSpec.ranged("k", (20, 10))

    def test_shards_must_be_positive(self):
        with pytest.raises(SchemaError):
            PartitionSpec.hashed("k", 0)

    def test_describe(self):
        assert PartitionSpec.hashed("n", 4).describe() == "hash(n) % 4"
        assert (
            PartitionSpec.ranged("n", (10,)).describe()
            == "range(n, 1 bound(s))"
        )

    def test_catalog_validation(self):
        db = make_table([])
        with pytest.raises(SchemaError):
            db.set_partitioning("t", "n")  # hash needs shards
        with pytest.raises(SchemaError):
            db.set_partitioning("t", "n", shards=4, kind="round_robin")
        with pytest.raises(SchemaError):
            db.configure_sharding(workers=0)


class TestRelationalEquivalence:
    QUERIES = [
        "SELECT n, s FROM t",
        "SELECT n, s FROM t WHERE n > 10 ORDER BY s, n",
        "SELECT s, COUNT(*) AS c FROM t GROUP BY s ORDER BY c DESC, s",
        "SELECT n FROM t WHERE s <> 'value 3' ORDER BY n DESC LIMIT 5",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_hash_sharded_rows_match_oracle(self, sql):
        oracle = make_table(ROWS).execute(sql)
        for shards, workers in CELLS:
            db = make_table(ROWS)
            db.set_partitioning("t", "n", shards=shards)
            db.configure_sharding(workers=workers)
            result = db.execute(sql)
            assert result.rows == oracle.rows
            assert result.columns == oracle.columns

    @pytest.mark.parametrize("sql", QUERIES)
    def test_range_sharded_rows_match_oracle(self, sql):
        oracle = make_table(ROWS).execute(sql)
        db = make_table(ROWS)
        db.set_partitioning("t", "n", kind="range", bounds=(10, 20, 30))
        db.configure_sharding(workers=4)
        assert db.execute(sql).rows == oracle.rows

    def test_unordered_scan_preserves_global_scan_order(self):
        # No ORDER BY: the merge's tag order IS the insertion order.
        oracle = make_table(ROWS).execute("SELECT n FROM t WHERE n >= 0")
        db = make_table(ROWS)
        db.set_partitioning("t", "n", shards=8)
        db.configure_sharding(workers=4)
        sharded = db.execute("SELECT n FROM t WHERE n >= 0")
        assert sharded.rows == oracle.rows


class TestUDFEquivalence:
    def test_rows_and_counters_invariant_across_cells(self):
        rows = [(i, f"review number {i % 11}") for i in range(40)]
        oracle_rows, oracle_usage = judged_rows(rows, None, None)
        for shards, workers in CELLS:
            got_rows, got_usage = judged_rows(rows, shards, workers)
            assert got_rows == oracle_rows, (shards, workers)
            assert got_usage == oracle_usage, (shards, workers)

    def test_repeated_cells_are_exactly_deterministic(self):
        rows = [(i, f"review number {i % 5}") for i in range(24)]
        for shards, workers in ((2, 4), (8, 4)):
            runs = [judged_rows(rows, shards, workers) for _ in range(3)]
            assert runs[0] == runs[1] == runs[2]

    def test_cross_shard_duplicates_dispatch_once(self):
        # 40 rows, 4 distinct values scattered over 8 shards: the
        # cross-shard dedup must keep dispatches at the distinct count.
        rows = [(i, f"dup {i % 4}") for i in range(40)]
        udf = CountingUDF()
        db = make_udf_db(rows, udf)
        db.set_partitioning("t", "n", shards=8)
        db.configure_sharding(workers=4)
        result = db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert udf.batch_tuples == 4
        assert result.rows == [(f"DUP {i % 4}",) for i in range(40)]

    def test_memo_carries_across_statements(self):
        rows = [(i, f"memo {i % 6}") for i in range(30)]
        udf = CountingUDF()
        db = make_udf_db(rows, udf)
        db.set_partitioning("t", "n", shards=8)
        db.configure_sharding(workers=4)
        first = db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert udf.batch_tuples == 6
        second = db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert udf.batch_tuples == 6  # fully memoized, zero dispatches
        assert first.rows == second.rows

    def test_where_expensive_plans_sharded_batched_filter(self):
        udf = CountingUDF()
        db = make_udf_db(ROWS, udf)
        db.set_partitioning("t", "n", shards=4)
        rendered = db.explain(
            "SELECT n FROM t WHERE SLOW(s) = 'VALUE 1'", udf_batch_size=8
        )
        assert "Exchange(shards=4)" in rendered
        assert "ShardBatchedFilter" in rendered

    def test_projection_plans_sharded_batched_project(self):
        udf = CountingUDF()
        db = make_udf_db(ROWS, udf)
        db.set_partitioning("t", "n", shards=4)
        rendered = db.explain("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert "Exchange(shards=4)" in rendered
        assert "ShardBatchedProject" in rendered


class TestPruning:
    def _partitioned(self, rows=ROWS, shards=4):
        db = make_table(rows)
        db.set_partitioning("t", "n", shards=shards)
        db.configure_sharding(workers=4)
        return db

    def test_equality_prunes_to_one_shard(self):
        db = self._partitioned()
        rendered = db.explain("SELECT s FROM t WHERE n = 7")
        assert "Exchange(shards=1)" in rendered
        assert "shard-pruning: partition-key predicate pruned 3 of 4 shard(s)" in rendered
        assert db.execute("SELECT s FROM t WHERE n = 7").rows == [
            ("value 0",)
        ]

    def test_in_list_prunes_to_member_shards(self):
        db = self._partitioned()
        spec = db.table("t").partition_spec
        survivors = {spec.shard_of(v) for v in (3, 7, 11)}
        rendered = db.explain("SELECT s FROM t WHERE n IN (3, 7, 11)")
        assert f"Exchange(shards={len(survivors)})" in rendered
        oracle = make_table(ROWS).execute(
            "SELECT s FROM t WHERE n IN (3, 7, 11)"
        )
        assert (
            db.execute("SELECT s FROM t WHERE n IN (3, 7, 11)").rows
            == oracle.rows
        )

    def test_pruned_counter_is_metered(self):
        db = self._partitioned()
        metrics = MetricsRegistry()
        db.bind_udf_meters(metrics=metrics)
        db.execute("SELECT s FROM t WHERE n = 7")
        assert metrics.counter("repro_shard_pruned_total").value == 3

    def test_null_equality_prunes_everything(self):
        # `n = NULL` matches no row: every shard is pruned and the
        # plan collapses to an empty Values node.
        db = self._partitioned()
        rendered = db.explain("SELECT s FROM t WHERE n = NULL")
        assert "Exchange" not in rendered
        assert "pruned 4 of 4 shard(s)" in rendered
        assert db.execute("SELECT s FROM t WHERE n = NULL").rows == []

    def test_uncoercible_literal_disables_pruning(self):
        db = self._partitioned()
        rendered = db.explain("SELECT s FROM t WHERE n = 'not a number'")
        assert "shard-pruning" not in rendered
        assert "Exchange(shards=4)" in rendered

    def test_non_key_predicate_does_not_prune(self):
        db = self._partitioned()
        rendered = db.explain("SELECT n FROM t WHERE s = 'value 1'")
        assert "shard-pruning" not in rendered
        assert "Exchange(shards=4)" in rendered

    def test_range_pruning_on_range_partitions(self):
        db = make_table(ROWS)
        db.set_partitioning("t", "n", kind="range", bounds=(10, 20, 30))
        db.configure_sharding(workers=4)
        rendered = db.explain("SELECT s FROM t WHERE n = 15")
        assert "Exchange(shards=1)" in rendered
        assert "pruned 3 of 4 shard(s)" in rendered

    def test_pruning_decision_count_is_shard_invariant(self):
        # The pruning decision is emitted whenever the predicate is
        # prunable — even when it eliminates zero shards — so the
        # optimizer decision count never depends on the shard count.
        for shards in (1, 2, 8):
            db = self._partitioned(shards=shards)
            rendered = db.explain("SELECT s FROM t WHERE n = 7")
            assert "shard-pruning" in rendered


class TestDeclineRules:
    def _partitioned_udf(self):
        udf = CountingUDF()
        db = make_udf_db(ROWS, udf)
        db.set_partitioning("t", "n", shards=4)
        db.configure_sharding(workers=4)
        return db

    def test_subquery_declines(self):
        db = self._partitioned_udf()
        rendered = db.explain(
            "SELECT s FROM t WHERE n IN (SELECT n FROM t WHERE n > 5)"
        )
        assert "Exchange" not in rendered
        assert "shard-declined: t: statement contains a subquery" in rendered

    def test_limit_without_order_by_declines(self):
        db = self._partitioned_udf()
        rendered = db.explain("SELECT s FROM t WHERE n > 3 LIMIT 2")
        assert "Exchange" not in rendered
        assert "LIMIT without ORDER BY streams a prefix" in rendered

    def test_limit_with_order_by_shards(self):
        db = self._partitioned_udf()
        rendered = db.explain(
            "SELECT s FROM t WHERE n > 3 ORDER BY n LIMIT 2"
        )
        assert "Exchange(shards=4)" in rendered

    def test_per_row_route_declines(self):
        db = self._partitioned_udf()
        rendered = db.explain(
            "SELECT n FROM t WHERE SLOW(s) = 'X'", udf_batch_size=None
        )
        assert "Exchange" not in rendered
        assert "expensive conjuncts are pinned to the per-row route" in rendered

    def test_conditional_only_expensive_declines(self):
        # All expensive calls sit in conditional positions: no strict
        # batch sites, so sharding would put per-row LM calls on shard
        # threads.  The plan stays unsharded.
        db = self._partitioned_udf()
        rendered = db.explain(
            "SELECT n FROM t WHERE n > 0 OR SLOW(s) = 'X'",
            udf_batch_size=8,
        )
        assert "Exchange" not in rendered
        assert "expensive conjunct has no batchable call sites" in rendered

    def test_index_lookup_beats_sharding(self):
        db = make_table(ROWS)
        db.create_index("t", "s")
        db.set_partitioning("t", "n", shards=4)
        db.configure_sharding(workers=4)
        rendered = db.explain("SELECT n FROM t WHERE s = 'value 1'")
        assert "IndexLookup" in rendered
        assert "Exchange" not in rendered

    def test_optimize_false_never_shards(self):
        db = make_table(ROWS)
        db.set_partitioning("t", "n", shards=4)
        db.configure_sharding(workers=4)
        rendered = db.explain("SELECT n FROM t WHERE n > 3", optimize=False)
        assert "Exchange" not in rendered

    def test_unpartitioned_table_never_shards(self):
        db = make_table(ROWS)
        db.configure_sharding(workers=4)
        rendered = db.explain("SELECT n FROM t WHERE n > 3")
        assert "Exchange" not in rendered

    def test_clear_partitioning_restores_unsharded_plans(self):
        db = make_table(ROWS)
        db.set_partitioning("t", "n", shards=4)
        assert "Exchange" in db.explain("SELECT n FROM t WHERE n > 3")
        db.clear_partitioning("t")
        assert "Exchange" not in db.explain("SELECT n FROM t WHERE n > 3")


class TestSortTieBreak:
    """ORDER BY ties must break by *global* scan position under shards.

    The naive un-optimized, un-partitioned evaluation is the oracle:
    its stable sort sees rows in global insertion order.  A sharded
    scan that leaked per-shard positions into the tie-break would
    reorder equal-key rows.
    """

    @given(
        keys=st.lists(st.integers(0, 3), min_size=0, max_size=32),
        shards=st.sampled_from([2, 3, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_key_rows_keep_insertion_order(self, keys, shards):
        rows = [(i, f"key {key}") for i, key in enumerate(keys)]
        sql = "SELECT n, s FROM t WHERE n >= 0 ORDER BY s"
        oracle = make_table(rows).execute(sql, optimize=False)
        db = make_table(rows)
        db.set_partitioning("t", "n", shards=shards)
        db.configure_sharding(workers=4)
        assert db.execute(sql).rows == oracle.rows


class TestErrorEquivalence:
    ROWS = [(1, "apple"), (2, "banana"), (3, "poison"), (4, "fig")]

    def _databases(self, shards=None, workers=4):
        udf = CountingUDF(fail_on="poison")
        db = make_udf_db(self.ROWS, udf)
        if shards is not None:
            db.set_partitioning("t", "n", shards=shards)
            db.configure_sharding(workers=workers)
        return db

    @pytest.mark.parametrize("shards,workers", [(2, 4), (8, 1), (8, 4)])
    def test_udf_error_is_identical_to_oracle(self, shards, workers):
        sql = "SELECT s FROM t WHERE SLOW(s) = 'APPLE'"
        with pytest.raises(ExecutionError) as oracle:
            self._databases().execute(sql, udf_batch_size=8)
        with pytest.raises(ExecutionError) as sharded:
            self._databases(shards, workers).execute(sql, udf_batch_size=8)
        assert str(sharded.value) == str(oracle.value)
        assert "error in function SLOW" in str(sharded.value)

    def test_errors_are_not_cached_across_statements(self):
        udf = CountingUDF(fail_on="poison")
        db = make_udf_db([(1, "poison")], udf)
        db.set_partitioning("t", "n", shards=8)
        db.configure_sharding(workers=4)
        for _ in range(2):
            with pytest.raises(ExecutionError):
                db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert len(db.udf_cache) == 0

    def test_successful_shards_still_commit_cache_puts(self):
        # Error granularity is per shard morsel: shards whose dispatch
        # succeeded replay their cache puts even when another shard's
        # row fails the statement.  Error *values* are never cached.
        db = self._databases(shards=8)
        with pytest.raises(ExecutionError):
            db.execute("SELECT SLOW(s) FROM t", udf_batch_size=8)
        assert len(db.udf_cache) == 3  # apple, banana, fig — not poison


class TestRacecheck:
    def test_sharded_udf_replay_is_race_free(self):
        rows = [(i, f"review number {i % 11}") for i in range(40)]
        checker = RaceChecker()
        with racecheck.checking(checker):
            got_rows, _ = judged_rows(rows, 8, 4)
        report = checker.report()
        assert report.ok, report.render()
        assert report.threads > 1

    def test_relational_sharded_replay_is_race_free(self):
        checker = RaceChecker()
        with racecheck.checking(checker):
            db = make_table(ROWS)
            db.set_partitioning("t", "n", shards=8)
            db.configure_sharding(workers=4)
            db.execute("SELECT n, s FROM t WHERE n > 5 ORDER BY s, n")
        report = checker.report()
        assert report.ok, report.render()
