"""Unit tests for RowLayout and ResultSet."""

import pytest

from repro.db.result import ResultSet, RowLayout
from repro.errors import PlanningError


@pytest.fixture()
def layout() -> RowLayout:
    return RowLayout(
        [("m", "id"), ("m", "title"), ("r", "id"), (None, "_agg0")]
    )


class TestRowLayout:
    def test_qualified_resolution(self, layout):
        assert layout.resolve("id", "m") == 0
        assert layout.resolve("id", "r") == 2

    def test_case_insensitive(self, layout):
        assert layout.resolve("TITLE", "M") == 1

    def test_unqualified_unique(self, layout):
        assert layout.resolve("title") == 1
        assert layout.resolve("_agg0") == 3

    def test_unqualified_ambiguous(self, layout):
        with pytest.raises(PlanningError, match="ambiguous"):
            layout.resolve("id")

    def test_unknown(self, layout):
        with pytest.raises(PlanningError):
            layout.resolve("nope")
        with pytest.raises(PlanningError):
            layout.resolve("title", "zzz")

    def test_can_resolve(self, layout):
        assert layout.can_resolve("title", "m")
        assert not layout.can_resolve("id")  # ambiguous counts as no

    def test_positions_for_binding(self, layout):
        assert layout.positions_for_binding("m") == [0, 1]
        assert layout.positions_for_binding("zzz") == []

    def test_rebind(self, layout):
        rebound = layout.rebind("x")
        assert rebound.resolve("title", "x") == 1
        assert rebound.bindings == {"x"}

    def test_concat(self):
        left = RowLayout([("a", "x")])
        right = RowLayout([("b", "y")])
        combined = RowLayout.concat(left, right)
        assert combined.names == ["x", "y"]
        assert combined.resolve("y", "b") == 1

    def test_names_and_bindings(self, layout):
        assert layout.names == ["id", "title", "id", "_agg0"]
        assert layout.bindings == {"m", "r"}


class TestResultSet:
    @pytest.fixture()
    def result(self) -> ResultSet:
        return ResultSet(["a", "b"], [(1, "x"), (2, "y")])

    def test_len_and_iter(self, result):
        assert len(result) == 2
        assert list(result) == [(1, "x"), (2, "y")]

    def test_column_by_name(self, result):
        assert result.column("B") == ["x", "y"]
        with pytest.raises(PlanningError):
            result.column("c")

    def test_scalar(self, result):
        assert result.scalar() == 1
        assert ResultSet(["a"], []).scalar() is None

    def test_to_dicts(self, result):
        assert result.to_dicts()[0] == {"a": 1, "b": "x"}
