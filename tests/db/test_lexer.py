"""Unit tests for the SQL lexer."""

import pytest

from repro.db.sql.lexer import TokenType, tokenize
from repro.errors import SQLSyntaxError


def _texts(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert _texts("select From") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifier_vs_keyword(self):
        tokens = _texts("SELECT revenue")
        assert tokens[1] == (TokenType.IDENTIFIER, "revenue")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestLiterals:
    def test_string_with_escaped_quote(self):
        tokens = _texts("'it''s'")
        assert tokens == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_integer_and_float(self):
        assert _texts("42 4.5 1e3 2E-2") == [
            (TokenType.INTEGER, "42"),
            (TokenType.FLOAT, "4.5"),
            (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2E-2"),
        ]

    def test_leading_dot_float(self):
        assert _texts(".5") == [(TokenType.FLOAT, ".5")]

    def test_number_then_word_boundary(self):
        tokens = _texts("1e")  # not scientific: falls back to INTEGER + id
        assert tokens[0] == (TokenType.INTEGER, "1")
        assert tokens[1] == (TokenType.IDENTIFIER, "e")


class TestQuotedIdentifiers:
    @pytest.mark.parametrize(
        "sql", ['"Academic Year"', "`Academic Year`", "[Academic Year]"]
    )
    def test_quoting_styles(self, sql):
        assert _texts(sql) == [(TokenType.IDENTIFIER, "Academic Year")]

    def test_doubled_quote_escape(self):
        assert _texts('"a""b"') == [(TokenType.IDENTIFIER, 'a"b')]

    def test_unterminated_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')


class TestOperatorsAndComments:
    def test_multichar_operators(self):
        assert [text for _, text in _texts("<= >= <> != || ==")] == [
            "<=",
            ">=",
            "<>",
            "!=",
            "||",
            "==",
        ]

    def test_line_comment_skipped(self):
        assert _texts("SELECT -- hidden\n1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.INTEGER, "1"),
        ]

    def test_block_comment_skipped(self):
        assert _texts("SELECT /* x\ny */ 1")[-1] == (
            TokenType.INTEGER,
            "1",
        )

    def test_unterminated_block_comment(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* forever")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7
