"""Plan-equivalence harness for the cost-based query optimizer.

The optimizer's contract is that it changes the *LM call pattern*,
never the answer: for any query, catalog, and batching route, the
optimized plan must return the same rows in the same order — and fail
with the same error text — as the unoptimized per-row oracle
(``optimize=False, udf_batch_size=None``).

Three regimes, matching the error-equivalence theory in DESIGN.md:

* **Total UDFs** (never raise): results must be identical across every
  route — per-row, auto, pinned batch sizes, cascade on/off.
* **Failing UDFs, arbitrary conjunct order**: hoisting cheap conjuncts
  above expensive ones can *eliminate* an error the written order
  would hit (a cheap filter prunes the poison row) but must never
  *introduce* one: if the optimized plan raises, the oracle raises the
  same error; if both return, rows are equal.
* **Failing UDFs, expensive-last written order**: the optimizer's
  reorder is then a no-op, so the full outcome (rows or error text)
  must be identical on every route.

Hypothesis example counts are deliberately bounded — this suite runs
in tier-1.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema
from repro.db.sql.parser import parse_statement
from repro.errors import ExecutionError

#: Routes compared against the per-row oracle: the auto default, the
#: explicit per-row pin, and pinned morsel sizes spanning smaller-
#: than-distinct to larger-than-table.
ROUTES = ["auto", None, 1, 7, 64]

VALUES = ["apple", "banana", "cherry", "poison", "fig", None]
GENRES = ["Romance", "Action", "Drama"]


def build_database(rows, fail_on=None, cheap_tier=False) -> Database:
    """A table of drawn rows plus a SLOW expensive UDF.

    ``fail_on`` makes SLOW raise on one argument value (the failing-UDF
    regimes).  ``cheap_tier=True`` registers a *sound* cheap cascade
    tier: it answers exactly what SLOW would for values it recognizes
    and returns None (escalate) for the rest — including the poison
    value, so cascade never masks an error the expensive tier would
    raise.
    """
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("s", DataType.TEXT),
                Column("genre", DataType.TEXT),
                Column("n", DataType.INTEGER),
            ],
        )
    )
    db.insert("t", rows)

    def scalar(value):
        if fail_on is not None and value == fail_on:
            raise ValueError(f"SLOW failed on {value!r}")
        return str(value).upper()

    def batch(tuples):
        return [scalar(value) for (value,) in tuples]

    cheap = None
    if cheap_tier:
        # Sound by construction: answers only when certain, and only
        # for values the expensive tier would not raise on.
        recognized = {"apple", "banana"} - {fail_on}

        def cheap(value):
            if value in recognized:
                return str(value).upper()
            return None

    db.register_udf(
        "SLOW", scalar, expensive=True, batch=batch, cheap=cheap
    )
    return db


def run(db: Database, sql: str, route):
    """(columns, rows) on success, ("error", text) on engine error."""
    try:
        if route == "auto":
            result = db.execute(sql)
        else:
            result = db.execute(sql, udf_batch_size=route)
    except ExecutionError as error:
        return ("error", str(error))
    return (result.columns, result.rows)


def run_oracle(db: Database, sql: str):
    try:
        result = db.execute(sql, optimize=False, udf_batch_size=None)
    except ExecutionError as error:
        return ("error", str(error))
    return (result.columns, result.rows)


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(VALUES),
        st.sampled_from(GENRES),
        st.one_of(st.integers(min_value=-3, max_value=9), st.none()),
    ),
    min_size=0,
    max_size=14,
)

#: Conjuncts in *drawn* order, so cheap/expensive interleavings vary.
conjuncts_strategy = st.lists(
    st.sampled_from(
        [
            "genre = 'Romance'",
            "genre <> 'Drama'",
            "n IS NOT NULL",
            "n > 2",
            "SLOW(s) = 'APPLE'",
            "SLOW(s) <> 'POISON'",
            "SLOW(genre) = 'ROMANCE'",
        ]
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


def build_sql(conjuncts, tail=""):
    return (
        "SELECT s, genre, n FROM t WHERE "
        + " AND ".join(conjuncts)
        + (" " + tail if tail else "")
    )


class TestTotalUDFEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(
        rows=rows_strategy,
        conjuncts=conjuncts_strategy,
        cheap_tier=st.booleans(),
        tail=st.sampled_from(["", "ORDER BY n DESC", "ORDER BY 1 LIMIT 4"]),
    )
    def test_all_routes_match_oracle(
        self, rows, conjuncts, cheap_tier, tail
    ):
        sql = build_sql(conjuncts, tail)
        oracle = run_oracle(build_database(rows), sql)
        for route in ROUTES:
            db = build_database(rows, cheap_tier=cheap_tier)
            assert run(db, sql, route) == oracle, (route, sql)

    @settings(max_examples=25, deadline=None)
    @given(rows=rows_strategy, cheap_tier=st.booleans())
    def test_projection_routes_match_oracle(self, rows, cheap_tier):
        sql = "SELECT s, SLOW(s) AS j FROM t ORDER BY n, s, j"
        oracle = run_oracle(build_database(rows), sql)
        for route in ROUTES:
            db = build_database(rows, cheap_tier=cheap_tier)
            assert run(db, sql, route) == oracle, route


class TestFailingUDFEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(
        rows=rows_strategy,
        conjuncts=conjuncts_strategy,
        cheap_tier=st.booleans(),
    )
    def test_optimizer_never_introduces_errors(
        self, rows, conjuncts, cheap_tier
    ):
        """Arbitrary conjunct order: optimized error ⟹ same oracle
        error; optimized success with oracle error is legal (cheap
        predicates pruned the poison row) but both-success ⟹ equal."""
        sql = build_sql(conjuncts)
        oracle_outcome = run_oracle(
            build_database(rows, fail_on="poison"), sql
        )
        for route in ROUTES:
            db = build_database(
                rows, fail_on="poison", cheap_tier=cheap_tier
            )
            outcome = run(db, sql, route)
            if outcome[0] == "error":
                assert outcome == oracle_outcome, (route, sql)
            elif oracle_outcome[0] != "error":
                assert outcome == oracle_outcome, (route, sql)

    @settings(max_examples=50, deadline=None)
    @given(
        rows=rows_strategy,
        cheap=st.lists(
            st.sampled_from(["genre <> 'Drama'", "n IS NOT NULL"]),
            min_size=0,
            max_size=2,
            unique=True,
        ),
        cheap_tier=st.booleans(),
    )
    def test_expensive_last_outcome_is_identical(
        self, rows, cheap, cheap_tier
    ):
        """Expensive conjuncts written last: the reorder is a no-op,
        so even the error outcome matches the oracle exactly.

        The cheap pool here is restricted to *two-valued* predicates
        (never NULL on the generated data).  A NULL-valued cheap
        conjunct breaks strict outcome equality for a subtle reason:
        ``NULL AND expensive`` cannot short-circuit (the combined
        result depends on the expensive side), so the oracle's single
        fused predicate still evaluates the failing UDF, while the
        optimizer's split filters drop the row at the cheap filter and
        never reach it.  That is an error *elimination* — legal under
        the regime-(b) contract above — not an equivalence bug.
        """
        conjuncts = cheap + ["SLOW(s) <> 'ZZZ'"]
        sql = build_sql(conjuncts)
        oracle = run_oracle(build_database(rows, fail_on="poison"), sql)
        for route in ROUTES:
            db = build_database(
                rows, fail_on="poison", cheap_tier=cheap_tier
            )
            assert run(db, sql, route) == oracle, (route, sql)


class TestPinnedBehaviors:
    def test_streaming_prefix_before_failing_row(self):
        """Rows ahead of the poison row stream out before the error,
        on the auto route exactly as on the oracle."""
        rows = [("apple", "Romance", 1), ("poison", "Romance", 2)]
        db = build_database(rows, fail_on="poison")
        sql = "SELECT s FROM t WHERE SLOW(s) <> 'ZZZ'"
        statement = parse_statement(sql)
        planner, _ = db._prepare_select(statement, True, "auto")
        plan, _ = planner.plan_select(statement)
        iterator = plan.execute()
        assert next(iterator) == ("apple",)
        with pytest.raises(ExecutionError):
            list(iterator)

    def test_errors_are_not_cached_across_statements(self):
        """A parked UDF error re-raises per statement; it must never
        enter the cross-statement LRU as a value."""
        rows = [("poison", "Romance", 1)]
        db = build_database(rows, fail_on="poison")
        sql = "SELECT SLOW(s) FROM t"
        for _ in range(2):
            with pytest.raises(ExecutionError) as caught:
                db.execute(sql)
            assert "SLOW failed on 'poison'" in str(caught.value)

    def test_cascade_errors_escalate_not_mask(self):
        """A cheap tier that raises is an escalation: the expensive
        tier still runs and its error surfaces unchanged."""
        db = Database()
        db.create_table(TableSchema("t", [Column("s", DataType.TEXT)]))
        db.insert("t", [("poison",)])

        def scalar(value):
            raise ValueError(f"SLOW failed on {value!r}")

        def cheap(value):
            raise RuntimeError("flaky cheap tier")

        db.register_udf("SLOW", scalar, expensive=True, cheap=cheap)
        with pytest.raises(ExecutionError) as caught:
            db.execute("SELECT SLOW(s) FROM t")
        assert "SLOW failed on 'poison'" in str(caught.value)


class TestStrictBatchingAcrossSplitConjuncts:
    """Regression: reordered AND chains keep every expensive conjunct
    strict.

    ``WHERE cheap AND e1 AND e2`` splits into top-level conjuncts; the
    optimizer hoists the cheap one and applies e1 and e2 as separate
    batched filters.  Each is unconditionally evaluated in its own
    filter, so BOTH must get strict batched call sites — the reorder
    must not demote e2 into a conditional (unbatchable) position, and
    short-circuit error behavior must still match the oracle (e2's
    UDF never sees rows e1 rejected).
    """

    ROWS = [
        ("apple", "Romance", 1),
        ("banana", "Romance", 2),
        ("apple", "Drama", 3),
        ("cherry", "Romance", 4),
    ]
    SQL = (
        "SELECT s FROM t WHERE genre = 'Romance' "
        "AND SLOW(s) <> 'ZZZ' AND SLOW(genre) = 'ROMANCE'"
    )

    def test_both_expensive_conjuncts_batch(self):
        db = build_database(self.ROWS)
        rendered = db.explain(self.SQL)
        assert rendered.count("BatchedFilter") == 2

    def test_results_match_oracle(self):
        oracle = run_oracle(build_database(self.ROWS), self.SQL)
        assert oracle == run(build_database(self.ROWS), self.SQL, "auto")

    def test_second_conjunct_never_sees_rejected_rows(self):
        """e2 = SLOW(n)... with poison only reachable if e1 failed to
        prune: the oracle short-circuits, so must the batched chain."""
        rows = [
            ("apple", "Romance", 1),
            ("poison", "Drama", 2),  # cheap conjunct prunes this row
        ]
        sql = (
            "SELECT s FROM t WHERE genre = 'Romance' "
            "AND SLOW(s) <> 'ZZZ' AND SLOW(genre) = 'ROMANCE'"
        )
        oracle = run_oracle(build_database(rows, fail_on="poison"), sql)
        assert oracle[0] != "error"
        for route in ROUTES:
            db = build_database(rows, fail_on="poison")
            assert run(db, sql, route) == oracle, route
