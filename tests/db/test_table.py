"""Unit tests for repro.db.table storage, constraints, and indexes."""

import pytest

from repro.db import Column, DataType, TableSchema
from repro.db.table import Table
from repro.errors import SchemaError


@pytest.fixture()
def table() -> Table:
    return Table(
        TableSchema(
            "people",
            [
                Column(
                    "id", DataType.INTEGER, nullable=False, primary_key=True
                ),
                Column("name", DataType.TEXT, nullable=False),
                Column("age", DataType.INTEGER),
            ],
        )
    )


class TestInsert:
    def test_positional_insert_coerces(self, table):
        table.insert([1, "Ada", "36"])
        assert table.rows == [(1, "Ada", 36)]

    def test_mapping_insert_fills_missing_with_null(self, table):
        table.insert({"id": 1, "name": "Ada"})
        assert table.rows == [(1, "Ada", None)]

    def test_mapping_insert_rejects_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "name": "Ada", "salary": 10})

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert([1, "Ada"])

    def test_not_null_enforced(self, table):
        with pytest.raises(SchemaError):
            table.insert([1, None, 30])

    def test_primary_key_uniqueness(self, table):
        table.insert([1, "Ada", 36])
        with pytest.raises(SchemaError):
            table.insert([1, "Bob", 40])

    def test_insert_many_counts(self, table):
        count = table.insert_many([[1, "Ada", 36], [2, "Bob", 40]])
        assert count == 2
        assert len(table) == 2


class TestReads:
    def test_column_values(self, table):
        table.insert_many([[1, "Ada", 36], [2, "Bob", None]])
        assert table.column_values("age") == [36, None]

    def test_to_dicts(self, table):
        table.insert([1, "Ada", 36])
        assert table.to_dicts() == [{"id": 1, "name": "Ada", "age": 36}]


class TestIndexes:
    def test_lookup_without_index_scans(self, table):
        table.insert_many([[1, "Ada", 36], [2, "Bob", 36], [3, "Cy", 20]])
        assert len(table.lookup("age", 36)) == 2

    def test_lookup_with_index(self, table):
        table.insert_many([[1, "Ada", 36], [2, "Bob", 36]])
        table.create_index("age")
        assert table.has_index("age")
        assert len(table.lookup("age", 36)) == 2
        assert table.lookup("age", 99) == []

    def test_index_maintained_on_later_inserts(self, table):
        table.create_index("age")
        table.insert([1, "Ada", 36])
        table.insert([2, "Bob", 36])
        assert len(table.lookup("age", 36)) == 2

    def test_lookup_coerces_value(self, table):
        table.insert([1, "Ada", 36])
        table.create_index("age")
        assert len(table.lookup("age", "36")) == 1
