"""Unit tests for repro.db.types: coercion and SQL comparison semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.types import (
    DataType,
    coerce,
    compare,
    infer_type,
    sort_key,
    values_equal,
)
from repro.errors import SchemaError


class TestDataTypeFromSql:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("INTEGER", DataType.INTEGER),
            ("int", DataType.INTEGER),
            ("BIGINT", DataType.INTEGER),
            ("REAL", DataType.REAL),
            ("double", DataType.REAL),
            ("NUMERIC", DataType.REAL),
            ("TEXT", DataType.TEXT),
            ("VARCHAR(80)", DataType.TEXT),
            ("DATE", DataType.TEXT),
            ("BOOLEAN", DataType.BOOLEAN),
        ],
    )
    def test_known_names(self, name, expected):
        assert DataType.from_sql(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            DataType.from_sql("BLOBBY")


class TestCoerce:
    def test_none_passes_through_every_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_from_string(self):
        assert coerce(" 42 ", DataType.INTEGER) == 42

    def test_integer_from_integral_float(self):
        assert coerce(2.0, DataType.INTEGER) == 2

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            coerce(2.5, DataType.INTEGER)

    def test_integer_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("forty", DataType.INTEGER)

    def test_real_from_int_and_string(self):
        assert coerce(3, DataType.REAL) == 3.0
        assert coerce("3.5", DataType.REAL) == 3.5

    def test_text_from_number(self):
        assert coerce(7, DataType.TEXT) == "7"

    def test_text_from_bool(self):
        assert coerce(True, DataType.TEXT) == "true"

    def test_boolean_from_strings(self):
        assert coerce("yes", DataType.BOOLEAN) is True
        assert coerce("0", DataType.BOOLEAN) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("maybe", DataType.BOOLEAN)

    def test_any_accepts_anything(self):
        assert coerce("x", DataType.ANY) == "x"


class TestInferType:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (True, DataType.BOOLEAN),
            (1, DataType.INTEGER),
            (1.5, DataType.REAL),
            ("a", DataType.TEXT),
            (None, DataType.ANY),
        ],
    )
    def test_inference(self, value, expected):
        assert infer_type(value) is expected


class TestComparison:
    def test_nulls_sort_first(self):
        values = ["b", None, 1, "a", 2.5]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert ordered[1:3] == [1, 2.5]
        assert ordered[3:] == ["a", "b"]

    def test_numeric_cross_type_comparison(self):
        assert compare(1, 1.0) == 0
        assert compare(1, 2.0) == -1
        assert compare(3.5, 2) == 1

    def test_null_propagation(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None
        assert values_equal(None, None) is None

    def test_text_vs_number_ordering(self):
        # Numbers sort before text, mirroring SQLite's type ordering.
        assert compare(999999, "a") == -1

    def test_values_equal(self):
        assert values_equal("x", "x") is True
        assert values_equal("x", "y") is False

    @given(
        st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text()),
        st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text()),
    )
    def test_compare_is_antisymmetric(self, left, right):
        forward = compare(left, right)
        backward = compare(right, left)
        if forward is None:
            assert backward is None
        else:
            assert backward == -forward

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(), st.text()), max_size=30
        )
    )
    def test_sort_key_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered
