"""End-to-end SQL execution tests against the engine (via Database)."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, PlanningError, SQLSyntaxError


def rows(db, sql, **kwargs):
    return db.execute(sql, **kwargs).rows


class TestProjectionAndFilter:
    def test_select_star(self, movies_db):
        result = movies_db.execute("SELECT * FROM movies")
        assert result.columns == ["id", "title", "genre", "revenue", "year"]
        assert len(result) == 6

    def test_qualified_star(self, movies_db):
        result = movies_db.execute("SELECT m.* FROM movies m")
        assert len(result.columns) == 5

    def test_where_filters_and_null_is_false(self, movies_db):
        # The NULL-genre row must not satisfy genre = 'Romance'.
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE genre = 'Romance'"
        ).column("title")
        assert titles == ["Titanic", "The Notebook", "Casablanca"]

    def test_is_null(self, movies_db):
        assert rows(
            movies_db, "SELECT title FROM movies WHERE genre IS NULL"
        ) == [("Unrated",)]

    def test_not_and_or(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE NOT genre = 'Romance' "
            "OR revenue > 2000"
        ).column("title")
        assert "Titanic" in titles
        assert "Avatar" in titles
        assert "Casablanca" not in titles

    def test_expression_projection(self, movies_db):
        result = movies_db.execute(
            "SELECT title, revenue / 1000.0 AS b FROM movies WHERE id = 1"
        )
        assert result.columns == ["title", "b"]
        assert result.rows[0][1] == pytest.approx(2.2578)

    def test_like(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE title LIKE 'the %'"
        ).column("title")
        assert titles == ["The Notebook", "The Matrix"]

    def test_between(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE year BETWEEN 1997 AND 2004"
        ).column("title")
        assert titles == ["Titanic", "The Notebook", "The Matrix"]

    def test_in_list(self, movies_db):
        assert len(
            rows(
                movies_db,
                "SELECT * FROM movies WHERE id IN (1, 3, 99)",
            )
        ) == 2

    def test_case_expression(self, movies_db):
        result = movies_db.execute(
            "SELECT title, CASE WHEN revenue > 1000 THEN 'hit' "
            "WHEN revenue IS NULL THEN 'unknown' ELSE 'modest' END AS tier "
            "FROM movies ORDER BY id"
        )
        tiers = result.column("tier")
        assert tiers == ["hit", "modest", "hit", "modest", "modest", "unknown"]

    def test_select_without_from(self, movies_db):
        assert rows(movies_db, "SELECT 1 + 2, 'x' || 'y'") == [(3, "xy")]


class TestOrderingAndLimits:
    def test_order_by_desc_with_limit(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE revenue IS NOT NULL "
            "ORDER BY revenue DESC LIMIT 2"
        ).column("title")
        assert titles == ["Avatar", "Titanic"]

    def test_order_by_positional(self, movies_db):
        result = movies_db.execute(
            "SELECT title, year FROM movies ORDER BY 2 LIMIT 1"
        )
        assert result.rows[0][0] == "Casablanca"

    def test_order_by_alias(self, movies_db):
        result = movies_db.execute(
            "SELECT title, revenue AS r FROM movies "
            "WHERE revenue IS NOT NULL ORDER BY r LIMIT 1"
        )
        assert result.rows[0][0] == "Casablanca"

    def test_order_by_unprojected_expression(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies ORDER BY ABS(year - 2000) LIMIT 2"
        ).column("title")
        assert titles == ["The Matrix", "Titanic"]

    def test_nulls_sort_first_ascending(self, movies_db):
        first = rows(
            movies_db, "SELECT title FROM movies ORDER BY revenue LIMIT 1"
        )
        assert first == [("Unrated",)]

    def test_offset(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies ORDER BY id LIMIT 2 OFFSET 1"
        ).column("title")
        assert titles == ["The Notebook", "Avatar"]

    def test_negative_limit_means_unlimited(self, movies_db):
        assert len(rows(movies_db, "SELECT id FROM movies LIMIT -1")) == 6

    def test_distinct(self, movies_db):
        genres = movies_db.execute(
            "SELECT DISTINCT genre FROM movies WHERE genre IS NOT NULL "
            "ORDER BY genre"
        ).column("genre")
        assert genres == ["Romance", "SciFi"]

    def test_multi_key_sort_stability(self, movies_db):
        result = movies_db.execute(
            "SELECT genre, title FROM movies WHERE genre IS NOT NULL "
            "ORDER BY genre ASC, year DESC"
        )
        assert result.rows[0] == ("Romance", "The Notebook")
        assert result.rows[2] == ("Romance", "Casablanca")


class TestAggregation:
    def test_count_star_vs_count_column(self, movies_db):
        result = movies_db.execute(
            "SELECT COUNT(*), COUNT(revenue) FROM movies"
        )
        assert result.rows == [(6, 5)]

    def test_count_on_empty_input_is_zero(self, movies_db):
        assert rows(
            movies_db, "SELECT COUNT(*) FROM movies WHERE id > 99"
        ) == [(0,)]

    def test_sum_avg_min_max(self, movies_db):
        result = movies_db.execute(
            "SELECT SUM(year), AVG(revenue), MIN(year), MAX(title) "
            "FROM movies WHERE genre = 'SciFi'"
        )
        total_year, avg_revenue, min_year, max_title = result.rows[0]
        assert total_year == 2009 + 1999
        assert avg_revenue == pytest.approx((2923.7 + 467.2) / 2)
        assert min_year == 1999
        assert max_title == "The Matrix"

    def test_sum_of_no_rows_is_null_total_is_zero(self, movies_db):
        result = movies_db.execute(
            "SELECT SUM(revenue), TOTAL(revenue) FROM movies WHERE id > 99"
        )
        assert result.rows == [(None, 0.0)]

    def test_group_by_with_having(self, movies_db):
        result = movies_db.execute(
            "SELECT genre, COUNT(*) AS n FROM movies "
            "WHERE genre IS NOT NULL GROUP BY genre HAVING n > 2"
        )
        assert result.rows == [("Romance", 3)]

    def test_group_by_positional(self, movies_db):
        result = movies_db.execute(
            "SELECT genre, COUNT(*) FROM movies GROUP BY 1 ORDER BY 2 DESC"
        )
        assert result.rows[0][0] == "Romance"

    def test_count_distinct(self, movies_db):
        assert rows(
            movies_db, "SELECT COUNT(DISTINCT genre) FROM movies"
        ) == [(2,)]

    def test_group_concat(self, movies_db):
        result = movies_db.execute(
            "SELECT GROUP_CONCAT(title) FROM movies WHERE genre = 'SciFi'"
        )
        assert result.rows == [("Avatar,The Matrix",)]

    def test_aggregate_in_expression(self, movies_db):
        result = movies_db.execute(
            "SELECT MAX(revenue) - MIN(revenue) FROM movies"
        )
        assert result.rows[0][0] == pytest.approx(2923.7 - 10.2)

    def test_bare_column_with_aggregate_is_lenient(self, movies_db):
        # SQLite-style leniency: a bare column in an aggregate query
        # resolves to a representative row instead of erroring.
        result = movies_db.execute("SELECT title, COUNT(*) FROM movies")
        assert result.rows[0][1] == 6

    def test_order_by_aggregate(self, movies_db):
        result = movies_db.execute(
            "SELECT genre FROM movies WHERE genre IS NOT NULL "
            "GROUP BY genre ORDER BY COUNT(*) DESC"
        )
        assert result.column("genre") == ["Romance", "SciFi"]

    def test_having_without_group_by_rejected(self, movies_db):
        with pytest.raises(PlanningError):
            movies_db.execute("SELECT title FROM movies HAVING title > 'a'")


class TestJoins:
    @pytest.fixture()
    def joined_db(self, movies_db) -> Database:
        movies_db.execute(
            "CREATE TABLE reviews (movie_id INTEGER, stars INTEGER)"
        )
        movies_db.execute(
            "INSERT INTO reviews VALUES (1, 5), (1, 4), (3, 5), (99, 1)"
        )
        return movies_db

    def test_inner_join(self, joined_db):
        result = joined_db.execute(
            "SELECT m.title, r.stars FROM movies m "
            "JOIN reviews r ON m.id = r.movie_id ORDER BY m.title, r.stars"
        )
        assert result.rows == [
            ("Avatar", 5),
            ("Titanic", 4),
            ("Titanic", 5),
        ]

    def test_left_join_keeps_unmatched(self, joined_db):
        result = joined_db.execute(
            "SELECT m.title, r.stars FROM movies m "
            "LEFT JOIN reviews r ON m.id = r.movie_id "
            "WHERE m.id = 2"
        )
        assert result.rows == [("The Notebook", None)]

    def test_join_with_aggregate(self, joined_db):
        result = joined_db.execute(
            "SELECT m.title, AVG(r.stars) FROM movies m "
            "JOIN reviews r ON m.id = r.movie_id GROUP BY m.title "
            "ORDER BY m.title"
        )
        assert result.rows == [("Avatar", 5.0), ("Titanic", 4.5)]

    def test_cross_join_count(self, joined_db):
        assert rows(
            joined_db, "SELECT COUNT(*) FROM movies, reviews"
        ) == [(24,)]

    def test_non_equi_join(self, joined_db):
        result = joined_db.execute(
            "SELECT COUNT(*) FROM movies m JOIN reviews r "
            "ON m.id < r.movie_id"
        )
        # movie ids are 1..6; review movie_ids are 1, 1, 3, 99:
        # id < 1 matches nothing (x2), id < 3 matches ids 1-2,
        # id < 99 matches all 6 -> 0 + 0 + 2 + 6 = 8 pairs.
        assert result.rows[0][0] == 8

    def test_self_join_with_aliases(self, movies_db):
        result = movies_db.execute(
            "SELECT a.title FROM movies a JOIN movies b "
            "ON a.genre = b.genre AND a.id <> b.id "
            "WHERE b.title = 'Titanic'"
        )
        assert sorted(result.column("title")) == [
            "Casablanca",
            "The Notebook",
        ]

    def test_subquery_in_from_with_join(self, joined_db):
        result = joined_db.execute(
            "SELECT m.title, s.n FROM movies m JOIN "
            "(SELECT movie_id, COUNT(*) AS n FROM reviews GROUP BY "
            "movie_id) s ON m.id = s.movie_id ORDER BY s.n DESC"
        )
        assert result.rows[0] == ("Titanic", 2)

    def test_ambiguous_column_rejected(self, joined_db):
        with pytest.raises(PlanningError):
            joined_db.execute(
                "SELECT id FROM movies m JOIN movies n ON m.id = n.id"
            )


class TestSubqueries:
    def test_in_subquery(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE id IN "
            "(SELECT id FROM movies WHERE revenue > 1000)"
        ).column("title")
        assert titles == ["Titanic", "Avatar"]

    def test_not_in_subquery(self, movies_db):
        titles = movies_db.execute(
            "SELECT title FROM movies WHERE id NOT IN "
            "(SELECT id FROM movies WHERE revenue > 100)"
        ).column("title")
        assert titles == ["Casablanca", "Unrated"]

    def test_scalar_subquery(self, movies_db):
        result = movies_db.execute(
            "SELECT title FROM movies WHERE revenue = "
            "(SELECT MAX(revenue) FROM movies)"
        )
        assert result.rows == [("Avatar",)]

    def test_exists(self, movies_db):
        assert rows(
            movies_db,
            "SELECT 1 WHERE EXISTS (SELECT 1 FROM movies WHERE id = 1)",
        ) == [(1,)]


class TestErrors:
    def test_unknown_table(self, movies_db):
        with pytest.raises(PlanningError):
            movies_db.execute("SELECT * FROM nope")

    def test_unknown_column(self, movies_db):
        with pytest.raises(PlanningError):
            movies_db.execute("SELECT nope FROM movies")

    def test_syntax_error(self, movies_db):
        with pytest.raises(SQLSyntaxError):
            movies_db.execute("SELEKT 1")

    def test_arithmetic_on_text_raises(self, movies_db):
        with pytest.raises(ExecutionError):
            movies_db.execute("SELECT title + 1 FROM movies")

    def test_division_by_zero_is_null(self, movies_db):
        assert rows(movies_db, "SELECT 1 / 0") == [(None,)]


class TestOptimizerEquivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT title FROM movies WHERE genre = 'Romance' "
            "ORDER BY revenue DESC",
            "SELECT genre, COUNT(*) FROM movies GROUP BY genre "
            "ORDER BY 2 DESC, 1",
            "SELECT a.title FROM movies a JOIN movies b ON a.id = b.id "
            "WHERE b.revenue > 100 ORDER BY a.id",
        ],
    )
    def test_optimized_matches_unoptimized(self, movies_db, sql):
        assert rows(movies_db, sql, optimize=True) == rows(
            movies_db, sql, optimize=False
        )

    def test_explain_shows_pushdown(self, movies_db):
        plan = movies_db.explain(
            "SELECT a.title FROM movies a JOIN movies b ON a.id = b.id "
            "WHERE a.genre = 'Romance'"
        )
        assert "HashJoin" in plan
        lines = plan.splitlines()
        filter_depth = next(
            line.index("Filter") for line in lines if "Filter" in line
        )
        join_depth = next(
            line.index("HashJoin") for line in lines if "HashJoin" in line
        )
        assert filter_depth > join_depth  # filter pushed below the join

    def test_index_lookup_used(self, movies_db):
        movies_db.create_index("movies", "genre")
        plan = movies_db.explain(
            "SELECT title FROM movies WHERE genre = 'SciFi'"
        )
        assert "IndexLookup" in plan

    def test_expensive_udf_applied_last(self, movies_db):
        movies_db.register_udf(
            "SLOWYES", lambda *_: "yes", expensive=True
        )
        plan = movies_db.explain(
            "SELECT title FROM movies WHERE SLOWYES(title) = 'yes' "
            "AND genre = 'Romance'"
        )
        cheap_line = next(
            line for line in plan.splitlines() if "Filter(where)" in line
        )
        expensive_line = next(
            line
            for line in plan.splitlines()
            if "expensive" in line
        )
        assert plan.index(expensive_line) < plan.index(cheap_line)


class TestUDFs:
    def test_udf_in_projection_and_filter(self, movies_db):
        movies_db.register_udf(
            "SENTIMENT", lambda text: "long" if len(text) > 7 else "short"
        )
        result = movies_db.execute(
            "SELECT title, SENTIMENT(title) FROM movies "
            "WHERE SENTIMENT(title) = 'short' ORDER BY id"
        )
        assert ("Titanic", "short") in result.rows
        assert all(row[1] == "short" for row in result.rows)

    def test_udf_error_wrapped(self, movies_db):
        movies_db.register_udf("BOOM", lambda: 1 / 0)
        with pytest.raises(ExecutionError):
            movies_db.execute("SELECT BOOM()")
