"""Property-based tests for the SQL engine (hypothesis).

Invariants: optimizer equivalence on generated queries, LIMIT/OFFSET
slicing semantics, DISTINCT idempotence, COUNT consistency with WHERE
partitioning.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema

COLUMNS = ["a", "b", "c"]


@st.composite
def small_tables(draw):
    row_count = draw(st.integers(min_value=0, max_value=25))
    rows = [
        (
            draw(
                st.one_of(st.none(), st.integers(-5, 5))
            ),
            draw(st.one_of(st.none(), st.integers(-5, 5))),
            draw(st.sampled_from(["x", "y", "z", None])),
        )
        for _ in range(row_count)
    ]
    return rows


def _database(rows) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("a", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("c", DataType.TEXT),
            ],
        )
    )
    db.insert("t", rows)
    return db


@st.composite
def where_clauses(draw):
    column = draw(st.sampled_from(["a", "b"]))
    operator = draw(st.sampled_from(["<", "<=", "=", ">", ">=", "<>"]))
    value = draw(st.integers(-5, 5))
    clause = f"{column} {operator} {value}"
    if draw(st.booleans()):
        other = draw(st.sampled_from(["a", "b"]))
        connective = draw(st.sampled_from(["AND", "OR"]))
        clause += f" {connective} {other} IS NOT NULL"
    return clause


class TestOptimizerEquivalence:
    @given(small_tables(), where_clauses())
    @settings(max_examples=60, deadline=None)
    def test_filter_queries(self, rows, where):
        db = _database(rows)
        sql = f"SELECT a, b, c FROM t WHERE {where} ORDER BY 1, 2, 3"
        assert db.execute(sql, optimize=True).rows == (
            db.execute(sql, optimize=False).rows
        )

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_self_join_queries(self, rows):
        db = _database(rows)
        sql = (
            "SELECT x.a, y.b FROM t x JOIN t y ON x.a = y.a "
            "WHERE y.b > 0 ORDER BY 1, 2"
        )
        assert db.execute(sql, optimize=True).rows == (
            db.execute(sql, optimize=False).rows
        )


class TestRelationalInvariants:
    @given(small_tables(), where_clauses())
    @settings(max_examples=60, deadline=None)
    def test_count_partition(self, rows, where):
        """COUNT(rows matching P) + COUNT(NOT P or NULL) == COUNT(*)."""
        db = _database(rows)
        total = db.execute("SELECT COUNT(*) FROM t").scalar()
        matching = db.execute(
            f"SELECT COUNT(*) FROM t WHERE {where}"
        ).scalar()
        complement = db.execute(
            f"SELECT COUNT(*) FROM t WHERE NOT ({where}) "
            f"OR ({where}) IS NULL"
        ).scalar()
        assert matching + complement == total

    @given(
        small_tables(),
        st.integers(0, 30),
        st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_limit_offset_slices(self, rows, limit, offset):
        db = _database(rows)
        everything = db.execute("SELECT a, b, c FROM t ORDER BY 1, 2, 3").rows
        sliced = db.execute(
            "SELECT a, b, c FROM t ORDER BY 1, 2, 3 "
            f"LIMIT {limit} OFFSET {offset}"
        ).rows
        assert sliced == everything[offset : offset + limit]

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent_and_bounded(self, rows):
        db = _database(rows)
        distinct = db.execute("SELECT DISTINCT a FROM t").rows
        assert len(distinct) == len(set(distinct))
        assert len(distinct) <= len(rows) or not rows

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_python(self, rows):
        db = _database(rows)
        expected = sum(r[0] for r in rows if r[0] is not None)
        got = db.execute("SELECT TOTAL(a) FROM t").scalar()
        assert got == pytest.approx(expected)

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_group_counts_sum_to_total(self, rows):
        db = _database(rows)
        groups = db.execute(
            "SELECT c, COUNT(*) FROM t GROUP BY c"
        ).rows
        assert sum(count for _, count in groups) == len(rows)
