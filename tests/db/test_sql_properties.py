"""Property-based tests for the SQL engine (hypothesis).

Invariants: optimizer equivalence on generated queries, LIMIT/OFFSET
slicing semantics, DISTINCT idempotence, COUNT consistency with WHERE
partitioning, and full-result equivalence of random
SELECT/WHERE/ORDER BY/LIMIT queries against a naive in-Python
evaluator implementing textbook SQL semantics (Kleene three-valued
logic, NULLS-first ascending sort, stable multi-key ordering).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, DataType, TableSchema

COLUMNS = ["a", "b", "c"]


@st.composite
def small_tables(draw):
    row_count = draw(st.integers(min_value=0, max_value=25))
    rows = [
        (
            draw(
                st.one_of(st.none(), st.integers(-5, 5))
            ),
            draw(st.one_of(st.none(), st.integers(-5, 5))),
            draw(st.sampled_from(["x", "y", "z", None])),
        )
        for _ in range(row_count)
    ]
    return rows


def _database(rows) -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("a", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("c", DataType.TEXT),
            ],
        )
    )
    db.insert("t", rows)
    return db


@st.composite
def where_clauses(draw):
    column = draw(st.sampled_from(["a", "b"]))
    operator = draw(st.sampled_from(["<", "<=", "=", ">", ">=", "<>"]))
    value = draw(st.integers(-5, 5))
    clause = f"{column} {operator} {value}"
    if draw(st.booleans()):
        other = draw(st.sampled_from(["a", "b"]))
        connective = draw(st.sampled_from(["AND", "OR"]))
        clause += f" {connective} {other} IS NOT NULL"
    return clause


class TestOptimizerEquivalence:
    @given(small_tables(), where_clauses())
    @settings(max_examples=60, deadline=None)
    def test_filter_queries(self, rows, where):
        db = _database(rows)
        sql = f"SELECT a, b, c FROM t WHERE {where} ORDER BY 1, 2, 3"
        assert db.execute(sql, optimize=True).rows == (
            db.execute(sql, optimize=False).rows
        )

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_self_join_queries(self, rows):
        db = _database(rows)
        sql = (
            "SELECT x.a, y.b FROM t x JOIN t y ON x.a = y.a "
            "WHERE y.b > 0 ORDER BY 1, 2"
        )
        assert db.execute(sql, optimize=True).rows == (
            db.execute(sql, optimize=False).rows
        )


class TestRelationalInvariants:
    @given(small_tables(), where_clauses())
    @settings(max_examples=60, deadline=None)
    def test_count_partition(self, rows, where):
        """COUNT(rows matching P) + COUNT(NOT P or NULL) == COUNT(*)."""
        db = _database(rows)
        total = db.execute("SELECT COUNT(*) FROM t").scalar()
        matching = db.execute(
            f"SELECT COUNT(*) FROM t WHERE {where}"
        ).scalar()
        complement = db.execute(
            f"SELECT COUNT(*) FROM t WHERE NOT ({where}) "
            f"OR ({where}) IS NULL"
        ).scalar()
        assert matching + complement == total

    @given(
        small_tables(),
        st.integers(0, 30),
        st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_limit_offset_slices(self, rows, limit, offset):
        db = _database(rows)
        everything = db.execute("SELECT a, b, c FROM t ORDER BY 1, 2, 3").rows
        sliced = db.execute(
            "SELECT a, b, c FROM t ORDER BY 1, 2, 3 "
            f"LIMIT {limit} OFFSET {offset}"
        ).rows
        assert sliced == everything[offset : offset + limit]

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent_and_bounded(self, rows):
        db = _database(rows)
        distinct = db.execute("SELECT DISTINCT a FROM t").rows
        assert len(distinct) == len(set(distinct))
        assert len(distinct) <= len(rows) or not rows

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_python(self, rows):
        db = _database(rows)
        expected = sum(r[0] for r in rows if r[0] is not None)
        got = db.execute("SELECT TOTAL(a) FROM t").scalar()
        assert got == pytest.approx(expected)

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_group_counts_sum_to_total(self, rows):
        db = _database(rows)
        groups = db.execute(
            "SELECT c, COUNT(*) FROM t GROUP BY c"
        ).rows
        assert sum(count for _, count in groups) == len(rows)


# ---------------------------------------------------------------------------
# Naive-evaluator cross-check
# ---------------------------------------------------------------------------

_COLUMN_INDEX = {"a": 0, "b": 1, "c": 2}

_COMPARATORS = {
    "<": lambda l, r: l < r,
    "<=": lambda l, r: l <= r,
    "=": lambda l, r: l == r,
    ">": lambda l, r: l > r,
    ">=": lambda l, r: l >= r,
    "<>": lambda l, r: l != r,
}


@st.composite
def predicates(draw, depth=1):
    """A structured WHERE predicate (rendered and evaluated in sync)."""
    leaves = [
        st.tuples(
            st.just("cmp"),
            st.sampled_from(["a", "b"]),
            st.sampled_from(sorted(_COMPARATORS)),
            st.integers(-5, 5),
        ),
        st.tuples(
            st.just("isnull"),
            st.sampled_from(["a", "b", "c"]),
            st.booleans(),  # negated -> IS NOT NULL
        ),
        st.tuples(
            st.just("eqtext"), st.sampled_from(["x", "y", "z"])
        ),
    ]
    if depth > 0:
        nested = predicates(depth=depth - 1)
        leaves.append(
            st.tuples(
                st.sampled_from(["and", "or"]), nested, nested
            )
        )
    return draw(st.one_of(leaves))


def _render_predicate(pred) -> str:
    kind = pred[0]
    if kind == "cmp":
        _, column, operator, value = pred
        return f"{column} {operator} {value}"
    if kind == "isnull":
        _, column, negated = pred
        return f"{column} IS {'NOT ' if negated else ''}NULL"
    if kind == "eqtext":
        return f"c = '{pred[1]}'"
    _, left, right = pred
    return (
        f"({_render_predicate(left)}) {kind.upper()} "
        f"({_render_predicate(right)})"
    )


def _eval_predicate(pred, row):
    """Three-valued (True/False/None) predicate over a raw row."""
    kind = pred[0]
    if kind == "cmp":
        _, column, operator, value = pred
        operand = row[_COLUMN_INDEX[column]]
        if operand is None:
            return None
        return _COMPARATORS[operator](operand, value)
    if kind == "isnull":
        _, column, negated = pred
        is_null = row[_COLUMN_INDEX[column]] is None
        return is_null != negated
    if kind == "eqtext":
        operand = row[_COLUMN_INDEX["c"]]
        if operand is None:
            return None
        return operand == pred[1]
    _, left, right = pred
    lhs = _eval_predicate(left, row)
    rhs = _eval_predicate(right, row)
    if kind == "and":
        if lhs is False or rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True
    if lhs is True or rhs is True:
        return True
    if lhs is None or rhs is None:
        return None
    return False


def _naive_sort_key(value):
    """Mirror of engine ordering: NULLs, then numerics, then text."""
    if value is None:
        return (0, 0.0)
    if isinstance(value, (bool, int, float)):
        return (1, float(value))
    return (2, value)


def _naive_evaluate(rows, select, where, order, limit, offset):
    """Textbook evaluation: filter -> sort -> slice -> project."""
    if where is not None:
        rows = [
            row for row in rows if _eval_predicate(where, row) is True
        ]
    else:
        rows = list(rows)
    for column, ascending in reversed(order):
        rows.sort(
            key=lambda row: _naive_sort_key(row[_COLUMN_INDEX[column]]),
            reverse=not ascending,
        )
    if limit is not None:
        rows = rows[offset : offset + limit]
    return [
        tuple(row[_COLUMN_INDEX[column]] for column in select)
        for row in rows
    ]


@st.composite
def select_queries(draw):
    select = draw(
        st.lists(
            st.sampled_from(["a", "b", "c"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    where = draw(st.none() | predicates())
    order = draw(
        st.lists(
            st.tuples(st.sampled_from(select), st.booleans()),
            max_size=2,
            unique_by=lambda pair: pair[0],
        )
    )
    limit = draw(st.none() | st.integers(0, 30))
    offset = draw(st.integers(0, 5)) if limit is not None else 0
    return select, where, order, limit, offset


def _render_query(select, where, order, limit, offset) -> str:
    sql = f"SELECT {', '.join(select)} FROM t"
    if where is not None:
        sql += f" WHERE {_render_predicate(where)}"
    if order:
        keys = ", ".join(
            f"{column} {'ASC' if ascending else 'DESC'}"
            for column, ascending in order
        )
        sql += f" ORDER BY {keys}"
    if limit is not None:
        sql += f" LIMIT {limit} OFFSET {offset}"
    return sql


class TestNaiveEvaluatorCrossCheck:
    """The engine must agree with a from-first-principles evaluator."""

    @given(small_tables(), select_queries())
    @settings(max_examples=120, deadline=None)
    def test_engine_matches_naive_evaluator(self, rows, query):
        select, where, order, limit, offset = query
        db = _database(rows)
        sql = _render_query(select, where, order, limit, offset)
        expected = _naive_evaluate(
            rows, select, where, order, limit, offset
        )
        assert db.execute(sql, optimize=True).rows == expected, sql
        assert db.execute(sql, optimize=False).rows == expected, sql

    @given(small_tables(), predicates())
    @settings(max_examples=60, deadline=None)
    def test_count_matches_naive_filter(self, rows, where):
        db = _database(rows)
        got = db.execute(
            f"SELECT COUNT(*) FROM t WHERE {_render_predicate(where)}"
        ).scalar()
        expected = sum(
            _eval_predicate(where, row) is True for row in rows
        )
        assert got == expected


class TestOrderByTotalOrder:
    """ORDER BY is a deterministic *total* order.

    Key ties break on input row position (mirroring the naive
    evaluator's stable multi-pass sort), and NULLs rank lowest — first
    ascending, last descending.  Without the positional tie-break,
    which rows survive a LIMIT under ties would be an implementation
    accident; here it is pinned behaviour.
    """

    @given(small_tables(), st.integers(1, 10))
    @settings(max_examples=80, deadline=None)
    def test_limit_under_ties_matches_naive(self, rows, limit):
        db = _database(rows)
        sql = f"SELECT a, b, c FROM t ORDER BY a DESC LIMIT {limit}"
        expected = _naive_evaluate(
            rows, ["a", "b", "c"], None, [("a", False)], limit, 0
        )
        assert db.execute(sql, optimize=True).rows == expected, sql
        assert db.execute(sql, optimize=False).rows == expected, sql

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_mixed_direction_keys_match_naive(self, rows):
        db = _database(rows)
        sql = "SELECT a, b, c FROM t ORDER BY a ASC, b DESC LIMIT 7"
        expected = _naive_evaluate(
            rows,
            ["a", "b", "c"],
            None,
            [("a", True), ("b", False)],
            7,
            0,
        )
        assert db.execute(sql, optimize=True).rows == expected, sql
        assert db.execute(sql, optimize=False).rows == expected, sql

    def test_asc_ties_keep_input_order(self):
        rows = [(1, i, "x") for i in range(10)]
        db = _database(rows)
        got = db.execute("SELECT b FROM t ORDER BY a LIMIT 4").rows
        assert got == [(0,), (1,), (2,), (3,)]

    def test_desc_ties_keep_input_order(self):
        """DESC reverses the key, not the tie-break: equal-key rows
        still surface in input order."""
        rows = [(1, i, "x") for i in range(10)]
        db = _database(rows)
        got = db.execute("SELECT b FROM t ORDER BY a DESC LIMIT 4").rows
        assert got == [(0,), (1,), (2,), (3,)]

    def test_null_ordering_is_explicit(self):
        rows = [(3, 0, "x"), (None, 1, "y"), (1, 2, "z")]
        db = _database(rows)
        assert db.execute("SELECT a FROM t ORDER BY a").rows == [
            (None,),
            (1,),
            (3,),
        ]
        assert db.execute("SELECT a FROM t ORDER BY a DESC").rows == [
            (3,),
            (1,),
            (None,),
        ]
