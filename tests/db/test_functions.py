"""Unit tests for builtin scalar/aggregate functions via SQL."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError


@pytest.fixture()
def db() -> Database:
    return Database()


def scalar(db, expression):
    return db.execute(f"SELECT {expression}").scalar()


class TestScalars:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("ABS(-3)", 3),
            ("ROUND(2.5)", 3.0),  # SQLite rounds half away from zero
            ("ROUND(-2.5)", -3.0),
            ("ROUND(2.345, 2)", 2.35),
            ("LENGTH('abc')", 3),
            ("UPPER('abc')", "ABC"),
            ("LOWER('ABC')", "abc"),
            ("TRIM('  x  ')", "x"),
            ("LTRIM('  x')", "x"),
            ("RTRIM('x  ')", "x"),
            ("REPLACE('banana', 'na', 'xy')", "baxyxy"),
            ("SUBSTR('hello', 2, 3)", "ell"),
            ("SUBSTR('hello', 2)", "ello"),
            ("SUBSTR('hello', -3)", "llo"),
            ("INSTR('hello', 'll')", 3),
            ("INSTR('hello', 'z')", 0),
            ("COALESCE(NULL, NULL, 5)", 5),
            ("IFNULL(NULL, 'x')", "x"),
            ("NULLIF(1, 1)", None),
            ("NULLIF(1, 2)", 1),
            ("IIF(1 > 0, 'yes', 'no')", "yes"),
            ("SQRT(9)", 3.0),
            ("FLOOR(2.7)", 2.0),
            ("CEIL(2.1)", 3.0),
            ("SIGN(-9)", -1),
            ("MIN(3, 1, 2)", 1),
            ("MAX(3, 1, 2)", 3),
        ],
    )
    def test_scalar_results(self, db, expression, expected):
        assert scalar(db, expression) == expected

    @pytest.mark.parametrize(
        "expression",
        ["ABS(NULL)", "LENGTH(NULL)", "UPPER(NULL)", "MIN(1, NULL)"],
    )
    def test_null_propagation(self, db, expression):
        assert scalar(db, expression) is None

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT NOPE(1)")

    def test_cast_leniency(self, db):
        assert scalar(db, "CAST('12' AS INTEGER)") == 12
        assert scalar(db, "CAST('x' AS INTEGER)") == 0
        assert scalar(db, "CAST(3 AS TEXT)") == "3"
