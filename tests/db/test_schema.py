"""Unit tests for repro.db.schema."""

import pytest

from repro.db import Column, DataType, ForeignKey, TableSchema
from repro.errors import SchemaError


def _schema(**kwargs) -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", DataType.INTEGER, nullable=False, primary_key=True),
            Column("name", DataType.TEXT),
            Column("Academic Year", DataType.TEXT),
        ],
        **kwargs,
    )


class TestColumn:
    def test_rejects_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("1bad", DataType.TEXT)

    def test_allows_interior_spaces(self):
        assert Column("Academic Year", DataType.TEXT).name == "Academic Year"


class TestTableSchema:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_rejects_duplicate_columns_case_insensitive(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT), Column("A", DataType.TEXT)],
            )

    def test_column_lookup_is_case_insensitive(self):
        schema = _schema()
        assert schema.column_index("NAME") == 1
        assert schema.column("name").dtype is DataType.TEXT
        assert schema.has_column("academic year")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            _schema().column_index("missing")

    def test_primary_key_columns(self):
        schema = _schema()
        assert [c.name for c in schema.primary_key_columns] == ["id"]

    def test_foreign_key_must_reference_own_column(self):
        with pytest.raises(SchemaError):
            _schema(foreign_keys=[ForeignKey("nope", "parent", "id")])

    def test_to_create_sql_quotes_spaced_names(self):
        sql = _schema().to_create_sql()
        assert '"Academic Year" TEXT' in sql
        assert "id INTEGER PRIMARY KEY NOT NULL" in sql

    def test_to_create_sql_renders_foreign_keys(self):
        schema = _schema(foreign_keys=[ForeignKey("name", "parent", "id")])
        assert "FOREIGN KEY (name) REFERENCES parent(id)" in (
            schema.to_create_sql()
        )

    def test_create_sql_round_trips_through_parser(self):
        from repro.db.sql.parser import parse_statement

        statement = parse_statement(_schema().to_create_sql())
        assert statement.name == "t"
        assert [c.name for c in statement.columns] == [
            "id",
            "name",
            "Academic Year",
        ]
