"""Tests for the benchmark runner and report rendering."""

import pytest

from repro.bench.report import (
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)
from repro.bench.runner import run_benchmark


@pytest.fixture(scope="module")
def small_report(suite=None):
    from repro.bench.suite import build_suite

    queries = [
        s
        for s in build_suite()
        if s.qid in (
            "match-k01",
            "comparison-k02",
            "ranking-r02",
            "aggregation-r01",
        )
    ]
    return run_benchmark(seed=0, queries=queries)


class TestRunner:
    def test_all_method_query_pairs_present(self, small_report):
        assert len(small_report.records) == 4 * 5
        assert len(small_report.methods) == 5

    def test_aggregation_has_no_correctness(self, small_report):
        for record in small_report.records:
            if record.query_type == "aggregation":
                assert record.correct is None
            else:
                assert record.correct in (True, False)

    def test_gold_shared_across_methods(self, small_report):
        golds = {
            record.method: record.gold
            for record in small_report.records
            if record.qid == "comparison-k02"
        }
        assert len(set(map(tuple, golds.values()))) == 1

    def test_et_positive(self, small_report):
        assert all(r.et_seconds > 0 for r in small_report.records)

    def test_accuracy_and_et_helpers(self, small_report):
        for method in small_report.methods:
            accuracy = small_report.accuracy(method)
            assert accuracy is None or 0.0 <= accuracy <= 1.0
            assert small_report.mean_et(method) > 0

    def test_accuracy_none_when_no_scoreable(self, small_report):
        assert small_report.accuracy(
            "RAG", query_type="aggregation"
        ) is None

    def test_record_lookup(self, small_report):
        record = small_report.record("RAG", "match-k01")
        assert record.method == "RAG"
        with pytest.raises(KeyError):
            small_report.record("RAG", "nope")

    def test_determinism(self):
        from repro.bench.suite import build_suite

        queries = build_suite()[:2]
        first = run_benchmark(seed=0, queries=queries)
        second = run_benchmark(seed=0, queries=queries)
        for a, b in zip(first.records, second.records):
            assert (a.answer, a.correct, a.et_seconds) == (
                b.answer, b.correct, b.et_seconds,
            )


class TestHarnessSurvival:
    def test_crashing_method_is_recorded_not_fatal(self):
        """A method hitting a non-ReproError bug yields error records.

        Together with ``TAGPipeline`` wrapping all exceptions, this is
        what lets serving workers and benchmark runs outlive buggy
        pipelines.
        """
        from repro.bench.suite import build_suite
        from repro.lm import LMConfig, SimulatedLM
        from repro.methods.base import Method

        class CrashingMethod(Method):
            name = "Crashing"

            def _answer(self, spec, dataset):
                raise ValueError("not a ReproError")

        queries = [
            s for s in build_suite()
            if s.qid in ("match-k01", "comparison-k02")
        ]
        report = run_benchmark(
            seed=0,
            methods=[CrashingMethod(SimulatedLM(LMConfig(seed=0)))],
            queries=queries,
        )
        assert len(report.records) == 2
        for record in report.records:
            assert record.error == "ValueError: not a ReproError"
            assert record.correct is False


class TestReport:
    def test_table1_rows_structure(self, small_report):
        rows = table1_rows(small_report)
        assert len(rows) == 5
        assert "Overall EM" in rows[0]
        assert "Aggregation ET" in rows[0]
        assert rows[0]["Aggregation EM"] is None  # N/A column

    def test_table2_rows_structure(self, small_report):
        rows = table2_rows(small_report)
        assert {"Knowledge EM", "Reasoning EM"} <= set(rows[0])

    def test_formatting_contains_all_methods(self, small_report):
        text = format_table1(small_report)
        for method in small_report.methods:
            assert method in text
        assert "N/A" in text  # aggregation EM column

    def test_table2_formatting(self, small_report):
        text = format_table2(small_report)
        assert "Knowledge" in text and "Reasoning" in text
