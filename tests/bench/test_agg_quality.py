"""Unit tests for the quantitative aggregation metrics."""

import pytest

from repro.bench.agg_quality import (
    entity_coverage,
    numeric_faithfulness,
    source_numbers,
)


class TestEntityCoverage:
    def test_full_coverage(self):
        assert entity_coverage(
            "races in 1999, 2000 and 2001", ["1999", "2000", "2001"]
        ) == 1.0

    def test_partial(self):
        assert entity_coverage(
            "only 1999 happened", ["1999", "2000"]
        ) == 0.5

    def test_case_insensitive(self):
        assert entity_coverage(
            "SEPANG hosted races", ["Sepang"]
        ) == 1.0

    def test_empty_gold_rejected(self):
        with pytest.raises(ValueError):
            entity_coverage("anything", [])

    def test_zero(self):
        assert entity_coverage("nothing relevant", ["Sepang"]) == 0.0


class TestNumericFaithfulness:
    def test_grounded_numbers(self):
        sources = {"2257.8", "1997"}
        assert numeric_faithfulness(
            "revenue was 2257.8 in 1997", sources
        ) == 1.0

    def test_hallucinated_number(self):
        assert numeric_faithfulness(
            "revenue was 9999.9", {"2257.8"}
        ) == 0.0

    def test_framing_integers_exempt(self):
        assert numeric_faithfulness(
            "There are 19 records; top 3 shown.", {"zzz"}
        ) == 1.0

    def test_date_components_ground(self):
        sources = source_numbers([{"date": "1999-03-27"}])
        assert numeric_faithfulness(
            "the race ran on 1999-03-27", sources
        ) == 1.0

    def test_no_numbers_is_fully_faithful(self):
        assert numeric_faithfulness("no figures here", set()) == 1.0

    def test_mixed(self):
        sources = {"100"}
        score = numeric_faithfulness("values 100 and 555", sources)
        assert score == 0.5

    def test_number_normalisation(self):
        assert numeric_faithfulness(
            "height 188", source_numbers([{"h": 188.0}])
        ) == 1.0


class TestSourceNumbers:
    def test_collects_all_values(self):
        values = source_numbers([{"a": 1, "b": "x"}, {"a": 2.5}])
        assert {"1", "x", "2.5"} <= values


class TestSuiteOracles:
    def test_every_aggregation_query_has_nonempty_oracles(
        self, suite, datasets
    ):
        for spec in suite:
            if spec.query_type != "aggregation":
                continue
            dataset = datasets[spec.domain]
            entities = spec.agg_entities(dataset)
            source = spec.agg_source(dataset)
            assert entities, spec.qid
            assert source, spec.qid

    def test_sepang_entities_are_the_19_years(self, suite, datasets):
        spec = next(s for s in suite if s.qid == "aggregation-k01")
        entities = spec.agg_entities(datasets[spec.domain])
        assert entities == [str(year) for year in range(1999, 2018)]

    def test_tag_answer_scores_high_on_sepang(self, suite, datasets):
        from repro.bench.queries import PipelineContext
        from repro.lm import LMConfig, SimulatedLM
        from repro.semantic import SemanticOperators

        spec = next(s for s in suite if s.qid == "aggregation-k01")
        dataset = datasets[spec.domain]
        lm = SimulatedLM(LMConfig(seed=0))
        answer = spec.pipeline(
            PipelineContext(
                dataset=dataset,
                ops=SemanticOperators(lm),
                lm=lm,
            )
        )
        coverage = entity_coverage(
            answer, spec.agg_entities(dataset)
        )
        faithfulness = numeric_faithfulness(
            answer, source_numbers(spec.agg_source(dataset))
        )
        assert coverage == 1.0
        assert faithfulness == 1.0
