"""Regression net: every hand-written pipeline runs under the noisy LM.

Individual behaviour is tested elsewhere; this sweep guarantees no
pipeline crashes, returns an empty/None answer where one is required,
or produces the wrong answer *shape* for its query type.
"""

from repro.bench.queries import PipelineContext
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators


class TestAllPipelines:
    def test_every_pipeline_runs_and_returns_sane_shapes(
        self, suite, datasets
    ):
        lm = SimulatedLM(LMConfig(seed=0))
        problems = []
        for spec in suite:
            context = PipelineContext(
                dataset=datasets[spec.domain],
                ops=SemanticOperators(lm, batch_size=32),
                lm=lm,
            )
            try:
                answer = spec.pipeline(context)
            except Exception as error:  # noqa: BLE001
                problems.append((spec.qid, repr(error)))
                continue
            if spec.query_type == "aggregation":
                if not isinstance(answer, str) or not answer.strip():
                    problems.append((spec.qid, f"bad text {answer!r}"))
            elif spec.query_type == "comparison":
                if (
                    not isinstance(answer, list)
                    or len(answer) != 1
                    or not isinstance(answer[0], int)
                ):
                    problems.append((spec.qid, f"bad count {answer!r}"))
            else:
                if not isinstance(answer, list) or not answer:
                    problems.append((spec.qid, f"bad list {answer!r}"))
        assert not problems, problems

    def test_pipelines_isolated_from_each_other(self, suite, datasets):
        # Running a pipeline twice with fresh LMs gives identical
        # answers: no pipeline mutates the shared dataset frames.
        spec = next(s for s in suite if s.qid == "ranking-k01")

        def run():
            lm = SimulatedLM(LMConfig(seed=0))
            return spec.pipeline(
                PipelineContext(
                    dataset=datasets[spec.domain],
                    ops=SemanticOperators(lm),
                    lm=lm,
                )
            )

        first = run()
        before = datasets[spec.domain].frame("schools").to_records()
        second = run()
        after = datasets[spec.domain].frame("schools").to_records()
        assert first == second
        assert before == after
