"""Tests for gold-oracle helpers and hand-written pipeline behaviour."""

import pytest

from repro.bench import oracle, pipelines
from repro.bench.queries import PipelineContext
from repro.frame import DataFrame
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators


@pytest.fixture()
def oracle_ctx(datasets, oracle_lm) -> PipelineContext:
    """Pipeline context with an oracle LM (no knowledge noise)."""
    return PipelineContext(
        dataset=datasets["california_schools"],
        ops=SemanticOperators(oracle_lm, batch_size=16),
        lm=oracle_lm,
    )


def _ctx(datasets, domain, lm) -> PipelineContext:
    return PipelineContext(
        dataset=datasets[domain],
        ops=SemanticOperators(lm, batch_size=16),
        lm=lm,
    )


class TestOracleHelpers:
    def test_cities_in_region_cached_kb(self):
        assert oracle.oracle_kb() is oracle.oracle_kb()

    def test_filter_by_region(self, datasets):
        schools = datasets["california_schools"].frame("schools")
        bay = oracle.filter_by_region(schools, "bay area")
        assert 0 < len(bay) < len(schools)
        assert "Los Angeles" not in bay["City"].unique()

    def test_person_height_unknown_raises(self):
        with pytest.raises(ValueError):
            oracle.person_height("Nobody Real")

    def test_set_helpers_nonempty(self):
        assert "Slovakia" in oracle.euro_countries()
        assert "Czech Republic" in oracle.eu_countries()
        assert "Circuit de Monaco" in oracle.street_circuits()
        assert "Sepang International Circuit" in (
            oracle.circuits_in_region("southeast asia")
        )
        assert "England Premier League" in oracle.uk_leagues()

    def test_text_judgments(self):
        assert oracle.is_positive("wonderful, excellent work")
        assert oracle.is_negative("a terrible mess")
        assert oracle.is_sarcastic("Oh great, yeah right, as if.")
        assert oracle.is_technical(
            "Bayesian covariance eigenvalue regularization"
        )

    def test_rank_by_descending(self):
        texts = ["plain words here", "gradient descent convergence"]
        from repro.text.technicality import technicality_score

        ranked = oracle.rank_by(texts, technicality_score)
        assert ranked[0] == "gradient descent convergence"


class TestPipelineHelpers:
    def test_region_filter_judges_unique_cities_once(self, datasets):
        lm = SimulatedLM(LMConfig(seed=0))
        ctx = _ctx(datasets, "california_schools", lm)
        schools = ctx.frame("schools")
        pipelines.filter_by_region(ctx, schools, "Bay Area")
        unique_cities = len(schools["City"].unique())
        assert lm.usage.calls == unique_cities

    def test_height_filter_with_oracle_matches_gold(
        self, datasets, oracle_lm
    ):
        ctx = _ctx(datasets, "european_football_2", oracle_lm)
        players = ctx.frame("Player")
        taller = pipelines.filter_players_by_height(
            ctx, players, "Stephen Curry", "taller"
        )
        threshold = oracle.person_height("Stephen Curry")
        expected = players[players["height"] > threshold]
        assert sorted(taller["player_name"].tolist()) == sorted(
            expected["player_name"].tolist()
        )

    def test_uk_league_filter(self, datasets, oracle_lm):
        ctx = _ctx(datasets, "european_football_2", oracle_lm)
        uk = pipelines.filter_uk_leagues(ctx, ctx.frame("League"))
        assert sorted(uk["name"].tolist()) == sorted(oracle.uk_leagues())

    def test_races_with_circuits_disambiguates_names(
        self, datasets, oracle_lm
    ):
        ctx = _ctx(datasets, "formula_1", oracle_lm)
        joined = pipelines.races_with_circuits(ctx)
        assert "race_name" in joined.columns
        assert "circuit_name" in joined.columns

    def test_comments_for_post_title_keeps_comment_columns(
        self, datasets, oracle_lm
    ):
        ctx = _ctx(datasets, "codebase_community", oracle_lm)
        comments = pipelines.comments_for_post_title(
            ctx, "How does gentle boosting differ from AdaBoost?"
        )
        for column in ("Text", "Score", "UserId", "CreationDate"):
            assert column in comments.columns
        assert len(comments) == 6

    def test_street_circuit_filter_with_oracle(self, datasets, oracle_lm):
        ctx = _ctx(datasets, "formula_1", oracle_lm)
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        assert sorted(street["name"].tolist()) == sorted(
            oracle.street_circuits()
        )


class TestOraclePipelinesAgree:
    """With an oracle LM and no judgment noise, every hand-written
    pipeline should reproduce its gold answer except where graded
    ranking jitter is inherent — a strong cross-check that pipelines
    and gold functions implement the same query."""

    def test_knowledge_pipelines_match_gold_with_oracle_lm(
        self, suite, datasets
    ):
        from repro.bench.evaluate import exact_match
        from repro.lm import concepts

        lm = SimulatedLM(LMConfig(seed=0, skepticism=0.0))
        old = (
            concepts.RANK_JITTER,
            concepts.PAIR_MARGIN,
            concepts.TEXT_MARGIN,
        )
        concepts.RANK_JITTER = 0.0
        concepts.PAIR_MARGIN = 0.0
        concepts.TEXT_MARGIN = 0.0
        try:
            mismatches = []
            for spec in suite:
                if spec.gold is None:
                    continue
                ctx = PipelineContext(
                    dataset=datasets[spec.domain],
                    ops=SemanticOperators(lm, batch_size=32),
                    lm=lm,
                )
                answer = spec.pipeline(ctx)
                gold = spec.gold(datasets[spec.domain])
                if not exact_match(
                    answer, gold, ordered=spec.query_type == "ranking"
                ):
                    mismatches.append((spec.qid, answer, gold))
            assert not mismatches, mismatches[:5]
        finally:
            (
                concepts.RANK_JITTER,
                concepts.PAIR_MARGIN,
                concepts.TEXT_MARGIN,
            ) = old
