"""Tests for BIRD-style External Knowledge (evidence) support."""

import pytest

from repro.bench.external_knowledge import oracle_external_knowledge
from repro.lm import LMConfig, SimulatedLM
from repro.lm.handlers.text2sql import parse_external_knowledge
from repro.lm.prompts import text2sql_prompt


class TestOracleProvider:
    def test_region_hint(self):
        hint = oracle_external_knowledge(
            "How many schools are in the Bay Area?"
        )
        assert hint is not None
        assert "bay area cities are:" in hint.lower()
        assert "San Francisco" in hint

    def test_height_hint(self):
        hint = oracle_external_knowledge(
            "How many players are taller than Stephen Curry?"
        )
        assert "Stephen Curry is 188 cm tall." in hint

    def test_euro_hint(self):
        hint = oracle_external_knowledge(
            "How many gas stations are in countries that use the Euro?"
        )
        assert "Slovakia" in hint

    def test_no_hint_needed(self):
        assert oracle_external_knowledge(
            "How many posts have a technical title?"
        ) is None

    def test_unknown_person_skipped(self):
        assert oracle_external_knowledge(
            "players taller than Nobody Realperson"
        ) is None


class TestHintParsing:
    def test_region_parse(self):
        overrides = parse_external_knowledge(
            "The bay area cities are: Oakland, San Jose and Berkeley."
        )
        assert overrides[("region_cities", "bay area")] == [
            "Oakland",
            "San Jose",
            "Berkeley",
        ]

    def test_height_parse(self):
        overrides = parse_external_knowledge(
            "Stephen Curry is 188 cm tall."
        )
        assert overrides[("height", "stephen curry")] == 188.0

    def test_set_parses(self):
        overrides = parse_external_knowledge(
            "Countries that use the Euro: Slovakia, Germany. "
            "The street circuits are: Circuit de Monaco."
        )
        assert overrides["euro_countries"] == ["Slovakia", "Germany"]
        assert overrides["street_circuits"] == ["Circuit de Monaco"]

    def test_empty_and_unknown(self):
        assert parse_external_knowledge("") == {}
        assert parse_external_knowledge("irrelevant trivia.") == {}


class TestEvidenceChangesSQL:
    def test_region_list_overrides_beliefs(self, datasets, lm):
        question = "How many schools are in the Bay Area?"
        schema = datasets["california_schools"].prompt_schema()
        without = lm.complete(
            text2sql_prompt(schema, question)
        ).text
        with_evidence = lm.complete(
            text2sql_prompt(
                schema,
                question,
                external_knowledge=(
                    "The bay area cities are: Oakland, Berkeley."
                ),
            )
        ).text
        assert "'Oakland', 'Berkeley'" in with_evidence.replace(
            '"', "'"
        ) or ("'Berkeley', 'Oakland'" in with_evidence)
        assert with_evidence != without

    def test_oracle_evidence_fixes_height(self, datasets):
        # Pick a seed where the belief about Peter Crouch drifts; the
        # evidence pins the height to the canonical value.
        from repro.knowledge import FuzzyKnowledge, KnowledgeBase

        kb = KnowledgeBase.default()
        drifted_seed = next(
            seed
            for seed in range(200)
            if FuzzyKnowledge(kb, seed=seed, skepticism=1.25)
            .believed_height_cm("Peter Crouch") != 201.0
        )
        lm = SimulatedLM(LMConfig(seed=drifted_seed))
        schema = datasets["european_football_2"].prompt_schema()
        question = "How many players are taller than Peter Crouch?"
        without = lm.complete(text2sql_prompt(schema, question)).text
        with_evidence = lm.complete(
            text2sql_prompt(
                schema,
                question,
                external_knowledge="Peter Crouch is 201 cm tall.",
            )
        ).text
        assert "201" in with_evidence
        assert "201" not in without
