"""Structural tests for the TAG-Bench suite and its gold oracles."""

import pytest

from repro.bench.queries import CAPABILITIES, QUERY_TYPES, QuerySpec
from repro.errors import BenchmarkError


class TestSuiteStructure:
    def test_eighty_queries(self, suite):
        assert len(suite) == 80

    def test_type_balance(self, suite):
        for query_type in QUERY_TYPES:
            count = sum(1 for s in suite if s.query_type == query_type)
            assert count == 20

    def test_capability_balance(self, suite):
        for capability in CAPABILITIES:
            count = sum(1 for s in suite if s.capability == capability)
            assert count == 40

    def test_type_capability_cells(self, suite):
        # 10 knowledge + 10 reasoning within each query type.
        for query_type in QUERY_TYPES:
            for capability in CAPABILITIES:
                count = sum(
                    1
                    for s in suite
                    if s.query_type == query_type
                    and s.capability == capability
                )
                assert count == 10

    def test_unique_ids_and_questions(self, suite):
        qids = [s.qid for s in suite]
        assert len(qids) == len(set(qids))
        questions = [s.question for s in suite]
        assert len(questions) == len(set(questions))

    def test_all_domains_are_known(self, suite, datasets):
        for spec in suite:
            assert spec.domain in datasets

    def test_paper_sample_queries_present(self, suite):
        questions = " ".join(s.question for s in suite)
        assert "Silicon Valley" in questions
        assert "taller than Stephen Curry" in questions
        assert "most technical to least technical" in questions
        assert "How does gentle boosting differ from AdaBoost?" in questions
        assert "Sepang International Circuit" in questions


class TestQuerySpecValidation:
    def test_bad_type_rejected(self):
        with pytest.raises(BenchmarkError):
            QuerySpec(
                "x", "d", "weird", "knowledge", "q",
                gold=lambda d: [], pipeline=lambda c: [],
            )

    def test_bad_capability_rejected(self):
        with pytest.raises(BenchmarkError):
            QuerySpec(
                "x", "d", "match", "magic", "q",
                gold=lambda d: [], pipeline=lambda c: [],
            )

    def test_aggregation_must_not_have_gold(self):
        with pytest.raises(BenchmarkError):
            QuerySpec(
                "x", "d", "aggregation", "knowledge", "q",
                gold=lambda d: [], pipeline=lambda c: [],
            )

    def test_non_aggregation_requires_gold(self):
        with pytest.raises(BenchmarkError):
            QuerySpec(
                "x", "d", "match", "knowledge", "q",
                gold=None, pipeline=lambda c: [],
            )


class TestGoldAnswers:
    def test_every_gold_is_nonempty_list(self, suite, datasets):
        for spec in suite:
            if spec.gold is None:
                continue
            gold = spec.gold(datasets[spec.domain])
            assert isinstance(gold, list), spec.qid
            assert gold, spec.qid
            assert all(value is not None for value in gold), spec.qid

    def test_gold_deterministic(self, suite, datasets):
        for spec in suite[:20]:
            if spec.gold is None:
                continue
            dataset = datasets[spec.domain]
            assert spec.gold(dataset) == spec.gold(dataset)

    def test_count_golds_are_single_ints(self, suite, datasets):
        for spec in suite:
            if spec.query_type != "comparison":
                continue
            gold = spec.gold(datasets[spec.domain])
            assert len(gold) == 1
            assert isinstance(gold[0], int)

    def test_ranking_golds_have_requested_length(self, suite, datasets):
        for spec in suite:
            if spec.query_type != "ranking":
                continue
            gold = spec.gold(datasets[spec.domain])
            assert len(gold) >= 2, spec.qid
