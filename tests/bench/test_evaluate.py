"""Unit tests for exact-match evaluation."""

from repro.bench.evaluate import exact_match, normalize_answer


class TestNormalize:
    def test_none(self):
        assert normalize_answer(None) is None

    def test_python_list_passthrough(self):
        assert normalize_answer([1, "x"]) == [1, "x"]

    def test_scalar_wrapped(self):
        assert normalize_answer(5) == [5]

    def test_lm_text_parsed(self):
        assert normalize_answer('[1, "two", 3.0]') == [1, "two", 3]

    def test_unparseable_text(self):
        assert normalize_answer("the answer is 5") is None
        assert normalize_answer("[unquoted") is None

    def test_non_list_literal_rejected(self):
        assert normalize_answer("'just a string'") is None

    def test_numeric_strings_canonicalised(self):
        assert normalize_answer(["560", "2.5"]) == [560, 2.5]

    def test_integral_floats_canonicalised(self):
        assert normalize_answer([2.0]) == [2]

    def test_bools_become_ints(self):
        assert normalize_answer([True]) == [1]

    def test_strings_stripped(self):
        assert normalize_answer(["  K-8  "]) == ["K-8"]


class TestExactMatch:
    def test_matching_lists(self):
        assert exact_match(["K-8"], ["K-8"])
        assert exact_match('["K-8"]', ["K-8"])
        assert exact_match([5], [5.0])
        assert exact_match("[5]", ["5"])

    def test_length_mismatch(self):
        assert not exact_match([1, 2], [1])

    def test_value_mismatch(self):
        assert not exact_match(["K-8"], ["9-12"])

    def test_unordered_by_default(self):
        assert exact_match(["b", "a"], ["a", "b"])

    def test_ordered_for_ranking(self):
        assert not exact_match(["b", "a"], ["a", "b"], ordered=True)
        assert exact_match(["a", "b"], ["a", "b"], ordered=True)

    def test_duplicates_respected(self):
        assert not exact_match(["a", "a"], ["a", "b"])
        assert exact_match(["a", "a"], ["a", "a"])

    def test_unparseable_is_wrong(self):
        assert not exact_match("no list here", ["x"])

    def test_none_is_wrong(self):
        assert not exact_match(None, ["x"])

    def test_float_tolerance(self):
        assert exact_match([2.0000000001], [2.0])
