"""Property-based tests for exact-match evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.evaluate import exact_match, normalize_answer

values = st.one_of(
    st.integers(-1000, 1000),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N"), max_codepoint=0x7F
        ),
        min_size=1,
        max_size=12,
    ),
)
gold_lists = st.lists(values, min_size=1, max_size=6)


class TestExactMatchProperties:
    @given(gold_lists)
    @settings(max_examples=80, deadline=None)
    def test_reflexive(self, gold):
        assert exact_match(list(gold), gold)
        assert exact_match(list(gold), gold, ordered=True)

    @given(gold_lists)
    @settings(max_examples=80, deadline=None)
    def test_matches_own_repr(self, gold):
        # The LM answers with a Python-evaluatable list literal; the
        # gold's own repr must always match it.
        assert exact_match(repr(gold), gold)

    @given(gold_lists)
    @settings(max_examples=80, deadline=None)
    def test_reversal_matches_unordered_only(self, gold):
        reversed_answer = list(reversed(gold))
        assert exact_match(reversed_answer, gold)
        # Order sensitivity is defined over *canonical* values ("0" and
        # 0 are the same value), so compare canonical forms.
        if normalize_answer(reversed_answer) != normalize_answer(gold):
            assert not exact_match(reversed_answer, gold, ordered=True)

    @given(gold_lists, values)
    @settings(max_examples=80, deadline=None)
    def test_extra_value_never_matches(self, gold, extra):
        assert not exact_match(list(gold) + [extra], gold)

    @given(gold_lists)
    @settings(max_examples=80, deadline=None)
    def test_missing_value_never_matches(self, gold):
        assert not exact_match(gold[:-1], gold)

    @given(st.lists(values, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_normalize_idempotent(self, answer):
        once = normalize_answer(list(answer))
        twice = normalize_answer(once)
        assert once == twice

    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        normalize_answer(text)
        exact_match(text, ["x"])
