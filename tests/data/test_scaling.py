"""Generator scale knobs: structures hold at non-default sizes."""

import pytest

from repro.data import (
    california_schools,
    codebase_community,
    debit_card_specializing,
    european_football_2,
    formula_1,
)


class TestScaleParameters:
    def test_schools_per_city(self):
        dataset = california_schools.build(seed=1, schools_per_city=2)
        cities = dataset.frame("schools")["City"].nunique()
        assert len(dataset.frame("schools")) == cities * 2

    def test_schools_scores_still_unique_when_dense(self):
        dataset = california_schools.build(seed=2, schools_per_city=8)
        maths = dataset.frame("satscores")["AvgScrMath"].tolist()
        assert len(maths) == len(set(maths))

    def test_comments_per_post(self):
        dataset = codebase_community.build(seed=3, comments_per_post=9)
        posts = len(dataset.frame("posts"))
        assert len(dataset.frame("comments")) == posts * 9

    def test_player_count(self):
        dataset = european_football_2.build(seed=4, players=50)
        assert len(dataset.frame("Player")) == 50
        assert len(dataset.frame("Player_Attributes")) == 50

    def test_results_per_race(self):
        dataset = formula_1.build(seed=5, results_per_race=6)
        races = len(dataset.frame("races"))
        assert len(dataset.frame("results")) == races * 6

    def test_debit_sizes(self):
        dataset = debit_card_specializing.build(
            seed=6, customers=10, stations=5, transactions=40
        )
        assert len(dataset.frame("customers")) == 10
        assert len(dataset.frame("gasstations")) == 5
        assert len(dataset.frame("transactions_1k")) == 40
        assert len(dataset.frame("yearmonth")) == 30

    def test_race_history_invariant_under_scaling(self, kb):
        # The Sepang 1999-2017 alignment with the fact store must hold
        # regardless of the results_per_race knob.
        dataset = formula_1.build(seed=7, results_per_race=3)
        years = dataset.db.execute(
            "SELECT r.year FROM races r JOIN circuits c "
            "ON r.circuitId = c.circuitId "
            "WHERE c.name = 'Sepang International Circuit' "
            "ORDER BY r.year"
        ).column("year")
        assert years == list(kb.race_years("Sepang International Circuit"))
