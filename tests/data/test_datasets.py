"""Unit tests for the synthetic BIRD-like dataset generators."""

import pytest

from repro.data import DOMAINS, load_all, load_domain
from repro.data.base import Dataset
from repro.errors import BenchmarkError
from repro.knowledge.formula1 import RACE_HISTORY


class TestLoaders:
    def test_all_domains_build(self, datasets):
        assert set(datasets) == set(DOMAINS)
        for dataset in datasets.values():
            assert isinstance(dataset, Dataset)
            assert dataset.db.table_names
            assert dataset.description

    def test_unknown_domain(self):
        with pytest.raises(BenchmarkError):
            load_domain("nope")

    def test_determinism(self):
        first = load_domain("codebase_community", seed=5)
        second = load_domain("codebase_community", seed=5)
        assert first.db.table("posts").rows == second.db.table("posts").rows

    def test_seeds_differ(self):
        a = load_domain("european_football_2", seed=1)
        b = load_domain("european_football_2", seed=2)
        assert a.db.table("Player").rows != b.db.table("Player").rows

    def test_frames_mirror_db(self, datasets):
        for dataset in datasets.values():
            for name in dataset.db.table_names:
                table = dataset.db.table(name)
                frame = dataset.frame(name)
                assert len(frame) == len(table)
                assert frame.columns == table.schema.column_names

    def test_unknown_frame(self, datasets):
        with pytest.raises(BenchmarkError):
            datasets["formula_1"].frame("nope")


class TestCaliforniaSchools:
    def test_sat_scores_unique(self, datasets):
        scores = datasets["california_schools"].frame("satscores")
        maths = scores["AvgScrMath"].tolist()
        assert len(maths) == len(set(maths))
        takers = scores["NumTstTakr"].tolist()
        assert len(takers) == len(set(takers))

    def test_coordinates_near_city(self, datasets, kb):
        from repro.knowledge.geography import CITY_COORDINATES

        schools = datasets["california_schools"].frame("schools")
        for record in schools.to_records()[:50]:
            latitude, longitude = CITY_COORDINATES[record["City"]]
            assert abs(record["Latitude"] - latitude) < 0.1
            assert abs(record["Longitude"] - longitude) < 0.1

    def test_foreign_keys_resolve(self, datasets):
        db = datasets["california_schools"].db
        orphans = db.execute(
            "SELECT COUNT(*) FROM satscores s WHERE s.cds NOT IN "
            "(SELECT CDSCode FROM schools)"
        ).scalar()
        assert orphans == 0


class TestCodebaseCommunity:
    def test_named_post_exists(self, datasets):
        posts = datasets["codebase_community"].frame("posts")
        titles = posts["Title"].tolist()
        assert "How does gentle boosting differ from AdaBoost?" in titles

    def test_every_post_has_comments(self, datasets):
        db = datasets["codebase_community"].db
        without = db.execute(
            "SELECT COUNT(*) FROM posts p WHERE p.Id NOT IN "
            "(SELECT PostId FROM comments)"
        ).scalar()
        assert without == 0

    def test_top_view_counts_distinct(self, datasets):
        posts = datasets["codebase_community"].frame("posts")
        top = posts.sort_values("ViewCount", ascending=False).head(10)
        views = top["ViewCount"].tolist()
        assert len(views) == len(set(views))


class TestFormula1:
    def test_races_match_fact_store(self, datasets, kb):
        db = datasets["formula_1"].db
        for circuit_name, years in RACE_HISTORY.items():
            got = db.execute(
                "SELECT r.year FROM races r JOIN circuits c "
                "ON r.circuitId = c.circuitId "
                f"WHERE c.name = '{circuit_name}' ORDER BY r.year"
            ).column("year")
            assert got == sorted(years)

    def test_rounds_sequential_within_year(self, datasets):
        db = datasets["formula_1"].db
        rounds = db.execute(
            "SELECT round FROM races WHERE year = 2005 ORDER BY round"
        ).column("round")
        assert rounds == list(range(1, len(rounds) + 1))

    def test_results_reference_races(self, datasets):
        db = datasets["formula_1"].db
        orphans = db.execute(
            "SELECT COUNT(*) FROM results WHERE raceId NOT IN "
            "(SELECT raceId FROM races)"
        ).scalar()
        assert orphans == 0

    def test_positions_start_at_one(self, datasets):
        db = datasets["formula_1"].db
        assert db.execute(
            "SELECT MIN(position) FROM results"
        ).scalar() == 1


class TestEuropeanFootball:
    def test_heights_realistic(self, datasets):
        players = datasets["european_football_2"].frame("Player")
        heights = players["height"].tolist()
        assert all(155.0 <= h <= 210.0 for h in heights)
        assert any(h > 188.0 for h in heights)  # taller than Curry
        assert any(h < 170.0 for h in heights)  # shorter than Messi

    def test_player_names_unique(self, datasets):
        players = datasets["european_football_2"].frame("Player")
        names = players["player_name"].tolist()
        assert len(names) == len(set(names))

    def test_attributes_one_per_player(self, datasets):
        dataset = datasets["european_football_2"]
        assert len(dataset.frame("Player_Attributes")) == len(
            dataset.frame("Player")
        )

    def test_uk_league_team_counts_distinct(self, datasets):
        db = datasets["european_football_2"].db
        counts = db.execute(
            "SELECT l.name, COUNT(*) AS n FROM League l "
            "JOIN Team t ON l.id = t.league_id "
            "WHERE l.name IN ('England Premier League', "
            "'Scotland Premier League') GROUP BY l.name"
        ).column("n")
        assert len(set(counts)) == len(counts)


class TestDebitCard:
    def test_countries_from_fact_store(self, datasets, kb):
        stations = datasets["debit_card_specializing"].frame("gasstations")
        for country in stations["Country"].unique():
            assert kb.get("uses_euro", country) is not None

    def test_transactions_reference_stations(self, datasets):
        db = datasets["debit_card_specializing"].db
        orphans = db.execute(
            "SELECT COUNT(*) FROM transactions_1k WHERE GasStationID "
            "NOT IN (SELECT GasStationID FROM gasstations)"
        ).scalar()
        assert orphans == 0

    def test_yearmonth_covers_every_customer(self, datasets):
        dataset = datasets["debit_card_specializing"]
        customers = len(dataset.frame("customers"))
        assert len(dataset.frame("yearmonth")) == customers * 3


class TestPromptSchema:
    def test_contains_create_tables_and_samples(self, datasets):
        text = datasets["california_schools"].prompt_schema()
        assert text.count("CREATE TABLE") == 3
        assert "-- Sample rows (schools)" in text
        assert "value examples" in text

    def test_prompt_schema_parses_back(self, datasets):
        from repro.lm.handlers.text2sql import _parse_schema

        tables, edges = _parse_schema(
            datasets["california_schools"].prompt_schema()
        )
        assert set(tables) == {"schools", "satscores", "frpm"}
        assert edges
