"""Tests for the paper-introduction accounts (QoQ) example dataset."""

import pytest

from repro.data import accounts
from repro.knowledge import FuzzyKnowledge
from repro.knowledge.business import COMPANY_VERTICAL_FACTS
from repro.lm import concepts


class TestAccountsDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return accounts.build(seed=0)

    def test_four_quarters_per_account(self, dataset):
        table = dataset.frame("accounts")
        names = table["account_name"].unique()
        assert len(table) == len(names) * 4
        assert len(names) == len(COMPANY_VERTICAL_FACTS)

    def test_revenue_positive(self, dataset):
        assert dataset.frame("accounts")["revenue"].min() > 0

    def test_retail_trends_upward(self, dataset, kb):
        # The generator gives retail a positive drift: total retail
        # revenue in the last quarter exceeds the first.
        retail = {
            str(fact.subject)
            for fact in kb.facts_for_relation("company_vertical")
            if fact.value == "retail"
        }
        table = dataset.frame("accounts")
        rows = table[table["account_name"].isin(retail)]
        by_quarter = rows.groupby("quarter").agg(
            total=("revenue", "sum")
        ).sort_values("quarter")
        totals = by_quarter["total"].tolist()
        assert totals[-1] > totals[0]

    def test_deterministic(self):
        first = accounts.build(seed=3).frame("accounts").to_records()
        second = accounts.build(seed=3).frame("accounts").to_records()
        assert first == second


class TestVerticalConcept:
    def test_oracle_judgments(self, kb):
        fuzzy = FuzzyKnowledge(kb, seed=0, skepticism=0.0)
        assert concepts.judge(
            "Walmart is in the retail vertical", fuzzy, 0
        )
        assert not concepts.judge(
            "Pfizer is in the retail vertical", fuzzy, 0
        )
        assert concepts.judge(
            "Pfizer is in the healthcare vertical", fuzzy, 0
        )

    def test_contested_membership_flips_across_seeds(self, kb):
        # Amazon's 'retail' classification is genuinely contested
        # (confidence 0.6) — the intro example's point about vertical
        # definitions living in the model, not the table.
        beliefs = {
            concepts.judge(
                "Amazon is in the retail vertical",
                FuzzyKnowledge(kb, seed=seed),
                seed,
            )
            for seed in range(40)
        }
        assert beliefs == {True, False}

    def test_unknown_company(self, kb):
        fuzzy = FuzzyKnowledge(kb, seed=0, skepticism=0.0)
        assert not concepts.judge(
            "Nonexistent Corp is in the retail vertical", fuzzy, 0
        )
