"""Unit and property tests for the flat and IVF vector indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.vector import FlatIndex, IVFIndex


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


@pytest.fixture()
def corpus() -> np.ndarray:
    rng = np.random.default_rng(7)
    return _unit_rows(rng.normal(size=(200, 32)))


class TestFlatIndex:
    def test_empty_search(self):
        index = FlatIndex(8)
        ids, scores = index.search(np.zeros(8), 5)
        assert len(ids) == 0 and len(scores) == 0

    def test_exact_top1_is_self(self, corpus):
        index = FlatIndex(32)
        index.add(corpus)
        ids, scores = index.search(corpus[17], 1)
        assert ids[0] == 17
        assert scores[0] == pytest.approx(1.0)

    def test_scores_descending(self, corpus):
        index = FlatIndex(32)
        index.add(corpus)
        _, scores = index.search(corpus[0], 10)
        assert all(
            scores[i] >= scores[i + 1] for i in range(len(scores) - 1)
        )

    def test_k_capped_at_size(self):
        index = FlatIndex(4)
        index.add(np.eye(4)[:2])
        ids, _ = index.search(np.ones(4), 10)
        assert len(ids) == 2

    def test_dimension_mismatch(self):
        index = FlatIndex(4)
        with pytest.raises(ReproError):
            index.add(np.ones((1, 5)))
        with pytest.raises(ReproError):
            index.search(np.ones(5), 1)

    def test_reconstruct(self, corpus):
        index = FlatIndex(32)
        index.add(corpus)
        assert np.allclose(index.reconstruct(3), corpus[3])

    @given(st.integers(0, 199), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_argmax(self, query_row, k):
        rng = np.random.default_rng(3)
        data = _unit_rows(rng.normal(size=(200, 16)))
        index = FlatIndex(16)
        index.add(data)
        ids, _ = index.search(data[query_row], k)
        brute = np.argsort(-(data @ data[query_row]), kind="stable")[:k]
        assert set(ids.tolist()) == set(brute.tolist())


class TestIVFIndex:
    def test_requires_training(self):
        index = IVFIndex(8, n_clusters=2)
        with pytest.raises(ReproError):
            index.add(np.ones((1, 8)))

    def test_training_needs_enough_vectors(self):
        index = IVFIndex(8, n_clusters=16)
        with pytest.raises(ReproError):
            index.train(np.ones((4, 8)))

    def test_search_returns_k(self, corpus):
        index = IVFIndex(32, n_clusters=8, nprobe=3, seed=0)
        index.train(corpus)
        index.add(corpus)
        ids, scores = index.search(corpus[5], 10)
        assert len(ids) == 10
        assert ids[0] == 5  # self always in its own probed cluster

    def test_recall_improves_with_nprobe(self, corpus):
        flat = FlatIndex(32)
        flat.add(corpus)

        def recall(nprobe: int) -> float:
            index = IVFIndex(32, n_clusters=10, nprobe=nprobe, seed=0)
            index.train(corpus)
            index.add(corpus)
            hits = 0
            for row in range(0, 200, 10):
                true_ids, _ = flat.search(corpus[row], 10)
                approx_ids, _ = index.search(corpus[row], 10)
                hits += len(set(true_ids.tolist()) & set(approx_ids.tolist()))
            return hits / (20 * 10)

        low = recall(1)
        high = recall(10)
        assert high >= low
        assert high == pytest.approx(1.0)

    def test_deterministic_given_seed(self, corpus):
        def build():
            index = IVFIndex(32, n_clusters=6, nprobe=2, seed=9)
            index.train(corpus)
            index.add(corpus)
            return index.search(corpus[3], 5)[0].tolist()

        assert build() == build()

    def test_empty_search_untrained(self):
        index = IVFIndex(8, n_clusters=2)
        ids, _ = index.search(np.ones(8), 3)
        assert len(ids) == 0

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            IVFIndex(0, n_clusters=4)
        with pytest.raises(ReproError):
            IVFIndex(8, n_clusters=0)


class TestIVFRetrain:
    """Regression tests for the retrain-strands-vectors bug.

    ``train()`` used to reset the inverted lists without rebuilding the
    assignments of already-stored vectors: after a retrain the index
    still reported its old ``len()`` but no probe could ever return the
    stored rows.
    """

    def test_retrain_keeps_stored_vectors_reachable(self, corpus):
        index = IVFIndex(32, n_clusters=4, nprobe=4, seed=0)
        index.train(corpus[:100])
        index.add(corpus[:100])
        # Retrain on a fresh sample — the pre-fix code left all 100
        # stored vectors stranded outside every inverted list.
        index.train(corpus[100:])
        assert len(index) == 100
        ids, scores = index.search(corpus[17], 1)
        assert len(ids) == 1
        assert ids[0] == 17
        assert scores[0] == pytest.approx(1.0)

    def test_retrain_with_full_probe_matches_flat(self, corpus):
        flat = FlatIndex(32)
        flat.add(corpus)
        index = IVFIndex(32, n_clusters=5, nprobe=5, seed=1)
        index.train(corpus)
        index.add(corpus)
        index.train(corpus[::-1].copy())
        for row in range(0, 200, 25):
            true_ids, _ = flat.search(corpus[row], 5)
            got_ids, _ = index.search(corpus[row], 5)
            assert set(got_ids.tolist()) == set(true_ids.tolist())

    def test_retrain_assignments_consistent_with_lists(self, corpus):
        index = IVFIndex(32, n_clusters=4, nprobe=1, seed=2)
        index.train(corpus[:50])
        index.add(corpus[:60])
        index.train(corpus[50:150])
        listed = sorted(
            row for rows in index._lists for row in rows
        )
        assert listed == list(range(60))
        for cluster, rows in enumerate(index._lists):
            for row in rows:
                assert index._assignments[row] == cluster

    def test_retrain_empty_index_unchanged(self, corpus):
        index = IVFIndex(32, n_clusters=4, nprobe=2, seed=0)
        index.train(corpus[:50])
        index.train(corpus[50:100])
        assert len(index) == 0
        ids, _ = index.search(corpus[0], 3)
        assert len(ids) == 0
