"""Reproduction of the paper's Figure 1 worked example.

"Summarize the reviews of the highest grossing romance movie considered
a 'classic'" over the movies table, with the 'classic' judgment pushed
into SQL as an LM UDF — the exec-side LM-operator design §2.1 describes.
"""

import pytest

from repro.core import FixedQuerySynthesizer, SQLExecutor, TAGPipeline
from repro.core.generation import SingleCallGenerator
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM, prompts


@pytest.fixture()
def movie_dataset():
    return movies.build()


@pytest.fixture()
def figure1_lm():
    return SimulatedLM(LMConfig(seed=0, skepticism=0.0))


def _register_classic_udf(dataset, lm) -> None:
    def llm_udf(task: str, value: str) -> str:
        condition = f"'{value}' is {task}"
        response = lm.complete(prompts.judgment_prompt(condition))
        return response.text

    dataset.db.register_udf("LLM", llm_udf, expensive=True)


class TestFigure1:
    def test_exec_step_finds_titanic(self, movie_dataset, figure1_lm):
        _register_classic_udf(movie_dataset, figure1_lm)
        result = movie_dataset.db.execute(
            "SELECT movie_title, review FROM movies "
            "WHERE genre = 'Romance' "
            "AND LLM('considered a ''classic''', movie_title) = 'yes' "
            "ORDER BY revenue DESC LIMIT 1"
        )
        assert result.rows[0][0] == "Titanic"

    def test_full_tag_pipeline_summarises_reviews(
        self, movie_dataset, figure1_lm
    ):
        _register_classic_udf(movie_dataset, figure1_lm)
        pipeline = TAGPipeline(
            FixedQuerySynthesizer(
                "SELECT movie_title, review FROM movies "
                "WHERE genre = 'Romance' "
                "AND LLM('considered a ''classic''', movie_title) = 'yes' "
                "ORDER BY revenue DESC LIMIT 1"
            ),
            SQLExecutor(movie_dataset.db),
            SingleCallGenerator(figure1_lm, aggregation=True),
        )
        result = pipeline.run(
            "Summarize the reviews of the highest grossing romance "
            "movie considered a 'classic'"
        )
        assert result.ok
        assert result.table[0]["movie_title"] == "Titanic"
        assert "Titanic" in result.answer

    def test_expensive_udf_saves_lm_calls(self, movie_dataset, figure1_lm):
        # The optimizer applies the genre filter before the LM UDF, so
        # only romance titles are judged.
        _register_classic_udf(movie_dataset, figure1_lm)
        movie_dataset.db.execute(
            "SELECT movie_title FROM movies WHERE genre = 'Romance' "
            "AND LLM('considered a ''classic''', movie_title) = 'yes'"
        )
        romance_count = len(
            movie_dataset.db.execute(
                "SELECT * FROM movies WHERE genre = 'Romance'"
            ).rows
        )
        assert figure1_lm.usage.calls == romance_count
