"""Unit tests for the self-correcting pipeline (validate→repair→retry)."""

import pytest

from repro.core import (
    FallbackPipeline,
    FixedQuerySynthesizer,
    LMQuerySynthesizer,
    NoGenerator,
    RepairAttempt,
    RepairPolicy,
    SQLExecutor,
    SelfCorrectingPipeline,
    TAGPipeline,
    describe_failure,
    render_transcript,
)
from repro.core.tag import TAGError
from repro.errors import RepairExhaustedError
from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.obs import MetricsRegistry


def _question(suite) -> str:
    return next(s for s in suite if s.domain == "formula_1").question


def _pipeline(lm, dataset, max_repairs: int, metrics=None):
    return SelfCorrectingPipeline(
        LMQuerySynthesizer(lm, dataset),
        SQLExecutor(dataset.db, analyze=True),
        NoGenerator(),
        lm=lm,
        schema_sql=dataset.prompt_schema(),
        policy=RepairPolicy(max_repairs=max_repairs),
        metrics=metrics,
    )


def _faulty(script) -> FaultyLM:
    return FaultyLM(
        SimulatedLM(LMConfig(seed=0)), FaultPlan(script=tuple(script))
    )


class TestRepairPolicy:
    def test_defaults(self):
        policy = RepairPolicy()
        assert policy.max_repairs == 2
        assert policy.max_tokens > 0

    def test_validates_budget(self):
        with pytest.raises(ValueError):
            RepairPolicy(max_repairs=-1)
        with pytest.raises(ValueError):
            RepairPolicy(max_tokens=0)
        RepairPolicy(max_repairs=0)  # disabling the loop is legal


class TestDescribeFailure:
    def test_analysis_error_renders_diagnostics(self, movies_db):
        executor = SQLExecutor(movies_db, analyze=True)
        with pytest.raises(Exception) as info:
            executor.execute("SELECT nope FROM movies")
        text = describe_failure(info.value)
        assert "ANA003" in text
        assert "unknown column 'nope'" in text

    def test_syntax_error_carries_position(self, movies_db):
        executor = SQLExecutor(movies_db)
        with pytest.raises(Exception) as info:
            executor.execute("tluser TCELES title FROM movies")
        assert describe_failure(info.value).startswith(
            "syntax error at position 0:"
        )

    def test_fallback_names_the_exception(self):
        assert describe_failure(ValueError("boom")) == "ValueError: boom"


class TestSelfCorrectingPipeline:
    def test_repairs_a_garbled_generation(self, suite, datasets):
        """One garbled synthesis, one repair: the answer matches the
        healthy run and the transcript records both attempts."""
        dataset = datasets["formula_1"]
        question = _question(suite)
        oracle = TAGPipeline(
            LMQuerySynthesizer(SimulatedLM(LMConfig(seed=0)), dataset),
            SQLExecutor(dataset.db, analyze=True),
            NoGenerator(),
        ).run(question)
        assert oracle.ok

        lm = _faulty(["malformed_sql"])
        result = _pipeline(lm, dataset, max_repairs=2).run(question)
        assert result.ok
        assert result.answer == oracle.answer
        assert result.query == oracle.query  # repair restored the SQL
        assert [a.attempt for a in result.repairs] == [0, 1]
        assert not result.repairs[0].ok
        assert result.repairs[0].diagnostics
        assert result.repairs[1].ok
        assert lm.usage.repair_attempts == 1
        assert lm.usage.repair_successes == 1
        assert lm.usage.repair_exhausted == 0

    def test_exhaustion_surfaces_structured_history(self, suite, datasets):
        """Every attempt garbled: the failure is kind
        ``repair_exhausted`` carrying all attempts and the last SQL."""
        dataset = datasets["formula_1"]
        lm = _faulty(["malformed_sql"] * 3)
        result = _pipeline(lm, dataset, max_repairs=2).run(_question(suite))
        assert not result.ok
        assert result.error.kind == "repair_exhausted"
        assert result.error.step_name == "execution"
        assert "2 repairs" in result.error.message
        assert len(result.error.repairs) == 3
        assert all(not a.ok for a in result.error.repairs)
        assert result.error.sql == result.error.repairs[-1].sql
        assert result.repairs == result.error.repairs
        assert isinstance(result.error.exception, RepairExhaustedError)
        assert lm.usage.repair_attempts == 2
        assert lm.usage.repair_successes == 0
        assert lm.usage.repair_exhausted == 1

    def test_zero_budget_is_byte_identical_to_plain(self, suite, datasets):
        """``max_repairs=0`` takes exactly the base pipeline's path:
        same structured error, same SQL, same usage — and no repair
        prompt is ever issued."""
        dataset = datasets["formula_1"]
        question = _question(suite)
        plain_lm = _faulty(["malformed_sql"])
        plain = TAGPipeline(
            LMQuerySynthesizer(plain_lm, dataset),
            SQLExecutor(dataset.db, analyze=True),
            NoGenerator(),
        ).run(question)
        repair_lm = _faulty(["malformed_sql"])
        guarded = _pipeline(repair_lm, dataset, max_repairs=0).run(question)
        assert not plain.ok and not guarded.ok
        assert guarded.error == plain.error
        assert guarded.query == plain.query
        assert guarded.repairs == []
        assert repair_lm.usage == plain_lm.usage
        assert repair_lm.usage.repair_attempts == 0

    def test_exhaustion_degrades_into_fallback_tier(self, suite, datasets):
        """An exhausted budget is an ordinary structured failure: a
        FallbackPipeline degrades past it and keeps the history."""
        dataset = datasets["formula_1"]
        primary = _pipeline(_faulty(["malformed_sql"] * 3), dataset, 2)
        safety_net = TAGPipeline(
            FixedQuerySynthesizer("SELECT name FROM circuits LIMIT 1"),
            SQLExecutor(dataset.db),
            NoGenerator(),
        )
        chain = FallbackPipeline(
            [("repair", primary), ("fixed", safety_net)]
        )
        result = chain.run(_question(suite))
        assert result.ok
        assert result.method == "fixed"
        assert result.degraded
        failed = result.fallbacks[0].error
        assert failed.kind == "repair_exhausted"
        assert len(failed.repairs) == 3

    def test_meters_mirror_into_metrics_registry(self, suite, datasets):
        dataset = datasets["formula_1"]
        metrics = MetricsRegistry()
        lm = _faulty(["malformed_sql"] * 3)
        _pipeline(lm, dataset, max_repairs=2, metrics=metrics).run(
            _question(suite)
        )
        assert metrics.counter("repro_repair_attempts_total").value == 2
        assert metrics.counter("repro_repair_exhausted_total").value == 1

    def test_non_sql_queries_are_not_repaired(self, datasets):
        """The loop only understands SQL text; a non-string query plan
        (e.g. an embedding) re-raises immediately."""
        dataset = datasets["formula_1"]

        class VectorSynthesizer:
            def synthesize(self, request):
                return (0.0, 1.0)

        class RejectingExecutor:
            def execute(self, query):
                from repro.errors import PlanningError

                raise PlanningError("not sql")

        lm = SimulatedLM(LMConfig(seed=0))
        pipeline = SelfCorrectingPipeline(
            VectorSynthesizer(),
            RejectingExecutor(),
            NoGenerator(),
            lm=lm,
            schema_sql=dataset.prompt_schema(),
            policy=RepairPolicy(max_repairs=2),
        )
        result = pipeline.run("anything")
        assert not result.ok
        assert result.error.kind == "PlanningError"
        assert lm.usage.repair_attempts == 0


class TestTranscript:
    GOLDEN = (
        "repair transcript: 2 attempts, repaired\n"
        "attempt 0 (synthesis): failed\n"
        "  sql: SELECT nope FROM movies\n"
        "  error: analysis: rejected (during synthesis)\n"
        "  diagnostics: error ANA003 at 7..11: unknown column 'nope'\n"
        "attempt 1 (repair): ok\n"
        "  sql: SELECT title FROM movies"
    )

    def test_golden_render(self):
        attempts = [
            RepairAttempt(
                attempt=0,
                sql="SELECT  nope\nFROM movies",
                error=TAGError(kind="analysis", message="rejected", step=0),
                diagnostics="error ANA003 at 7..11: unknown column 'nope'",
            ),
            RepairAttempt(attempt=1, sql="SELECT title FROM movies"),
        ]
        assert render_transcript(attempts) == self.GOLDEN

    def test_exhausted_and_empty_renders(self):
        failed = RepairAttempt(
            attempt=0,
            sql="SELECT 1",
            error=TAGError(kind="x", message="m"),
        )
        text = render_transcript([failed])
        assert text.startswith("repair transcript: 1 attempts, exhausted")
        assert render_transcript([]) == "repair transcript: no attempts"


class TestTAGErrorContext:
    def test_execution_failure_preserves_sql_and_input(self, movies_db):
        """Satellite: a failed step records what it was running."""
        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT broken FROM nowhere"),
            SQLExecutor(movies_db),
            NoGenerator(),
        )
        result = pipeline.run("anything")
        assert not result.ok
        assert result.error.sql == "SELECT broken FROM nowhere"
        assert result.error.step_input == "SELECT broken FROM nowhere"

    def test_generation_failure_keeps_table_input(self, movies_db):
        class BuggyGenerator:
            def generate(self, request, table):
                raise ValueError("bug")

        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT title FROM movies WHERE id = 1"),
            SQLExecutor(movies_db),
            BuggyGenerator(),
        )
        result = pipeline.run("anything")
        assert result.error.step_input == [{"title": "Titanic"}]
        assert result.error.sql == result.query
