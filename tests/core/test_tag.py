"""Unit tests for the TAG core: pipeline composition and steps."""

import pytest

from repro.core import (
    EmbeddingSynthesizer,
    FixedQuerySynthesizer,
    LMQuerySynthesizer,
    MapReduceGenerator,
    NoGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
    VectorSearchExecutor,
)
from repro.core.synthesis import _broaden_to_retrieval
from repro.embed import HashingEmbedder
from repro.errors import ReproError


class TestTAGPipeline:
    def test_composes_three_steps(self, movies_db):
        pipeline = TAGPipeline(
            FixedQuerySynthesizer(
                "SELECT title FROM movies WHERE revenue > 1000"
            ),
            SQLExecutor(movies_db),
            NoGenerator(),
        )
        result = pipeline.run("Which movies grossed over a billion?")
        assert result.ok
        assert result.answer == ["Titanic", "Avatar"]
        assert result.query.startswith("SELECT")
        assert len(result.table) == 2

    def test_errors_captured_not_raised(self, movies_db):
        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT broken FROM nowhere"),
            SQLExecutor(movies_db),
            NoGenerator(),
        )
        result = pipeline.run("anything")
        assert not result.ok
        assert isinstance(result.error.exception, ReproError)
        assert result.error.kind == type(result.error.exception).__name__
        assert result.error.step_name == "execution"
        assert result.answer is None

    def test_non_repro_errors_also_captured(self, movies_db):
        """A buggy custom step must fail the request, not the caller.

        Serving workers run arbitrary user pipelines; any exception
        escaping ``run`` would kill the worker thread, so *all*
        exceptions are wrapped into ``TAGResult.error``.
        """

        class BuggyGenerator:
            def generate(self, request, table):
                raise ValueError("user bug, not a ReproError")

        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT title FROM movies"),
            SQLExecutor(movies_db),
            BuggyGenerator(),
        )
        result = pipeline.run("anything")
        assert not result.ok
        assert result.error.kind == "ValueError"
        assert isinstance(result.error.exception, ValueError)
        assert result.error.step_name == "generation"
        assert result.table  # earlier steps' progress is preserved
        assert result.answer is None

    def test_keyboard_interrupt_propagates(self, movies_db):
        class InterruptedGenerator:
            def generate(self, request, table):
                raise KeyboardInterrupt

        pipeline = TAGPipeline(
            FixedQuerySynthesizer("SELECT title FROM movies"),
            SQLExecutor(movies_db),
            InterruptedGenerator(),
        )
        with pytest.raises(KeyboardInterrupt):
            pipeline.run("anything")


class TestSynthesizers:
    def test_fixed(self):
        assert FixedQuerySynthesizer("Q").synthesize("anything") == "Q"

    def test_lm_synthesizer_produces_sql(self, lm, datasets):
        synthesizer = LMQuerySynthesizer(
            lm, datasets["california_schools"]
        )
        sql = synthesizer.synthesize("How many schools are there?")
        assert sql.upper().startswith("SELECT")

    def test_retrieval_mode_broadens(self):
        sql = "SELECT COUNT(*) FROM t WHERE a > 1 ORDER BY a LIMIT 3"
        broadened = _broaden_to_retrieval(sql)
        assert broadened.startswith("SELECT * FROM")
        assert "LIMIT" not in broadened
        assert "WHERE a > 1" in broadened

    def test_embedding_synthesizer(self):
        embedder = HashingEmbedder(dimensions=64)
        vector = EmbeddingSynthesizer(embedder).synthesize("hello")
        assert vector.shape == (64,)


class TestExecutors:
    def test_sql_executor_returns_records(self, movies_db):
        records = SQLExecutor(movies_db).execute(
            "SELECT title, year FROM movies WHERE id = 1"
        )
        assert records == [{"title": "Titanic", "year": 1997}]

    def test_sql_executor_row_cap(self, movies_db):
        records = SQLExecutor(movies_db, max_rows=2).execute(
            "SELECT * FROM movies"
        )
        assert len(records) == 2

    def test_vector_executor_retrieves_relevant_rows(self, datasets):
        embedder = HashingEmbedder()
        executor = VectorSearchExecutor(
            datasets["formula_1"], embedder, k=5
        )
        query = embedder.embed(
            "Sepang International Circuit Kuala Lumpur Malaysia"
        )
        records = executor.execute(query)
        assert len(records) == 5
        assert any(
            record.get("name") == "Sepang International Circuit"
            for record in records
        )

    def test_vector_executor_corpus_covers_all_tables(self, datasets):
        executor = VectorSearchExecutor(
            datasets["codebase_community"], HashingEmbedder(), k=1
        )
        db = datasets["codebase_community"].db
        expected = sum(len(db.table(t)) for t in db.table_names)
        assert executor.corpus_size == expected


class TestGenerators:
    def test_no_generator_flattens(self):
        generator = NoGenerator()
        assert generator.generate("q", [{"a": 1}, {"a": 2}]) == [1, 2]
        assert generator.generate("q", [{"a": 1, "b": 2}]) == [(1, 2)]

    def test_single_call_generator(self, lm):
        generator = SingleCallGenerator(lm)
        answer = generator.generate(
            "How many rows are there?", [{"x": "1"}]
        )
        assert answer.startswith("[")

    def test_map_reduce_generator_folds(self, lm):
        generator = MapReduceGenerator(lm, chunk_rows=8)
        table = [{"year": 1999 + i} for i in range(30)]
        answer = generator.generate("Summarize the years", table)
        assert answer
        assert lm.usage.calls >= 4  # chunked folding

    def test_map_reduce_empty_table(self, lm):
        generator = MapReduceGenerator(lm)
        answer = generator.generate("Summarize anything", [])
        assert "do not contain" in answer

    def test_map_reduce_validates_chunk(self, lm):
        with pytest.raises(ValueError):
            MapReduceGenerator(lm, chunk_rows=1)
