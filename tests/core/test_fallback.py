"""Unit tests for FallbackPipeline: graceful degradation chains."""

import pytest

from repro.core import (
    FallbackPipeline,
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    TAGPipeline,
)

GOOD_SQL = "SELECT title FROM movies WHERE revenue > 1000"
BAD_SQL = "SELECT broken FROM nowhere"


def tier(movies_db, sql) -> TAGPipeline:
    return TAGPipeline(
        FixedQuerySynthesizer(sql), SQLExecutor(movies_db), NoGenerator()
    )


class TestFallbackPipeline:
    def test_primary_success_is_not_degraded(self, movies_db):
        chain = FallbackPipeline(
            [
                ("primary", tier(movies_db, GOOD_SQL)),
                ("fallback", tier(movies_db, GOOD_SQL)),
            ]
        )
        result = chain.run("Which movies grossed over a billion?")
        assert result.ok
        assert result.method == "primary"
        assert not result.degraded
        assert result.fallbacks == []

    def test_degrades_to_next_tier(self, movies_db):
        chain = FallbackPipeline(
            [
                ("primary", tier(movies_db, BAD_SQL)),
                ("fallback", tier(movies_db, GOOD_SQL)),
            ]
        )
        result = chain.run("anything")
        assert result.ok
        assert result.method == "fallback"
        assert result.degraded
        assert [a.method for a in result.fallbacks] == ["primary"]
        assert result.fallbacks[0].error.step_name == "execution"

    def test_all_tiers_fail_returns_structured_refusal(self, movies_db):
        chain = FallbackPipeline(
            [
                ("a", tier(movies_db, BAD_SQL)),
                ("b", tier(movies_db, BAD_SQL)),
            ]
        )
        result = chain.run("anything")
        assert not result.ok
        assert result.method == "b"
        assert result.degraded
        assert result.error is not None
        assert [a.method for a in result.fallbacks] == ["a"]

    def test_validates_tiers(self, movies_db):
        with pytest.raises(ValueError):
            FallbackPipeline([])
        with pytest.raises(ValueError):
            FallbackPipeline(
                [
                    ("same", tier(movies_db, GOOD_SQL)),
                    ("same", tier(movies_db, GOOD_SQL)),
                ]
            )
