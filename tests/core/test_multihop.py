"""Unit tests for multi-hop TAG chains and the refine generator."""

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    Hop,
    MapReduceGenerator,
    NoGenerator,
    RefineGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGChain,
    TAGPipeline,
)
from repro.core.multihop import _as_text
from repro.errors import ReproError


def _pipeline(db, sql, lm=None, aggregation=False):
    generator = (
        SingleCallGenerator(lm, aggregation=aggregation)
        if lm is not None
        else NoGenerator()
    )
    return TAGPipeline(
        FixedQuerySynthesizer(sql), SQLExecutor(db), generator
    )


class TestAsText:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, ""),
            ("x", "x"),
            (["only"], "only"),
            ([1, 2], "1, 2"),
            (3, "3"),
        ],
    )
    def test_rendering(self, value, expected):
        assert _as_text(value) == expected


class TestTAGChain:
    def test_requires_hops(self):
        with pytest.raises(ReproError):
            TAGChain([])

    def test_answer_feeds_next_hop(self, movies_db):
        # Hop 1: find the top-grossing genre; hop 2: list its movies.
        chain = TAGChain(
            [
                Hop(
                    "top genre",
                    _pipeline(
                        movies_db,
                        "SELECT genre FROM movies WHERE genre IS NOT "
                        "NULL GROUP BY genre ORDER BY SUM(revenue) "
                        "DESC LIMIT 1",
                    ),
                ),
                Hop(
                    "movies in {answer}",
                    _DynamicPipeline(movies_db),
                ),
            ]
        )
        result = chain.run("which genre dominates?")
        assert result.ok
        assert result.hops[0].answer == ["SciFi"]
        assert sorted(result.answer) == ["Avatar", "The Matrix"]

    def test_original_request_available(self, movies_db):
        chain = TAGChain(
            [Hop("{request}", _EchoPipeline())]
        )
        result = chain.run("the original words")
        assert result.answer == "the original words"

    def test_failed_hop_stops_chain(self, movies_db):
        chain = TAGChain(
            [
                Hop(
                    "boom",
                    _pipeline(movies_db, "SELECT broken FROM nowhere"),
                ),
                Hop("never runs {answer}", _EchoPipeline()),
            ]
        )
        result = chain.run()
        assert not result.ok
        assert len(result.hops) == 1

    def test_sepang_two_hop(self, datasets, lm):
        # The natural multi-hop version of Figure 2: find the busiest
        # Southeast Asian circuit, then summarise its races.
        db = datasets["formula_1"].db
        chain = TAGChain(
            [
                Hop(
                    "busiest circuit",
                    _pipeline(
                        db,
                        "SELECT c.name FROM circuits c JOIN races r "
                        "ON c.circuitId = r.circuitId "
                        "WHERE c.country = 'Malaysia' "
                        "GROUP BY c.name ORDER BY COUNT(*) DESC LIMIT 1",
                    ),
                ),
                Hop(
                    "Provide information about the races held on "
                    "{answer}.",
                    TAGPipeline(
                        _CircuitRacesSynthesizer(),
                        SQLExecutor(db),
                        # Map-reduce folding enumerates structured rows
                        # completely (the Figure 2 TAG behaviour).
                        MapReduceGenerator(lm),
                    ),
                ),
            ]
        )
        result = chain.run()
        assert result.ok
        assert result.hops[0].answer == ["Sepang International Circuit"]
        assert "1999" in result.answer and "2017" in result.answer


class _EchoPipeline:
    """Pipeline stub whose answer is the request itself."""

    def run(self, request):
        from repro.core import TAGResult

        return TAGResult(request=request, answer=request)


class _DynamicPipeline:
    """Pipeline that parses the genre from the hop request."""

    def __init__(self, db):
        self.db = db

    def run(self, request):
        from repro.core import TAGResult

        genre = request.split()[-1].replace("'", "''")
        result = self.db.execute(
            f"SELECT title FROM movies WHERE genre = '{genre}'"
        )
        return TAGResult(
            request=request, answer=[row[0] for row in result.rows]
        )


class _CircuitRacesSynthesizer:
    """syn for hop 2: request text -> SQL over the named circuit."""

    def synthesize(self, request: str) -> str:
        import re

        match = re.search(r"held on (.+?)\.", request)
        circuit = match.group(1).replace("'", "''")
        return (
            "SELECT r.year, r.date, r.name FROM races r JOIN circuits "
            f"c ON r.circuitId = c.circuitId WHERE c.name = '{circuit}' "
            "ORDER BY r.year"
        )


class TestRefineGenerator:
    def test_refines_over_chunks(self, lm):
        generator = RefineGenerator(lm, chunk_rows=8)
        table = [{"year": 1999 + i} for i in range(19)]
        answer = generator.generate("Summarize the years", table)
        assert answer
        assert lm.usage.calls == 3  # ceil(19 / 8) sequential calls

    def test_empty_table(self, lm):
        answer = RefineGenerator(lm).generate("Summarize", [])
        assert "do not contain" in answer

    def test_validates_chunk_rows(self, lm):
        with pytest.raises(ValueError):
            RefineGenerator(lm, chunk_rows=0)
