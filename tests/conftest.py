"""Shared fixtures.

Expensive artifacts (datasets, suites) are session-scoped; mutable ones
(databases, LMs) are function-scoped so tests never interfere.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import build_suite
from repro.data import load_all
from repro.data.base import Dataset
from repro.db import Column, Database, DataType, TableSchema
from repro.knowledge import KnowledgeBase
from repro.lm import LMConfig, SimulatedLM


@pytest.fixture(scope="session")
def datasets() -> dict[str, Dataset]:
    return load_all(seed=0)


@pytest.fixture(scope="session")
def suite():
    return build_suite()


@pytest.fixture(scope="session")
def kb() -> KnowledgeBase:
    return KnowledgeBase.default()


@pytest.fixture()
def lm() -> SimulatedLM:
    return SimulatedLM(LMConfig(seed=0))


@pytest.fixture()
def oracle_lm() -> SimulatedLM:
    """An LM with knowledge errors disabled (skepticism 0)."""
    return SimulatedLM(LMConfig(seed=0, skepticism=0.0))


@pytest.fixture()
def movies_db() -> Database:
    """A small movies table used across engine tests."""
    db = Database()
    db.create_table(
        TableSchema(
            "movies",
            [
                Column(
                    "id", DataType.INTEGER, nullable=False, primary_key=True
                ),
                Column("title", DataType.TEXT),
                Column("genre", DataType.TEXT),
                Column("revenue", DataType.REAL),
                Column("year", DataType.INTEGER),
            ],
        )
    )
    db.insert(
        "movies",
        [
            [1, "Titanic", "Romance", 2257.8, 1997],
            [2, "The Notebook", "Romance", 115.6, 2004],
            [3, "Avatar", "SciFi", 2923.7, 2009],
            [4, "Casablanca", "Romance", 10.2, 1942],
            [5, "The Matrix", "SciFi", 467.2, 1999],
            [6, "Unrated", None, None, 2020],
        ],
    )
    return db
