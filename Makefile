PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke lint analyze-smoke verify

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:
	REPRO_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_resilience.py -q

# Determinism linter over src/ (see repro.analysis.lint); exits
# nonzero on any unsuppressed finding.
lint:
	$(PYTHON) -m repro lint

# The static analyzer must accept a known-good query and reject a
# known-bad one, end to end through the CLI.
analyze-smoke:
	$(PYTHON) -m repro analyze "SELECT name FROM circuits LIMIT 3" --db formula_1
	! $(PYTHON) -m repro analyze "SELECT nope FROM circuits" --db formula_1

# The pre-merge gate: full tier-1 suite, a smoke-mode pass of the
# resilience benchmark, a clean determinism-lint baseline, and an
# analyzer round-trip through the CLI.
verify: test bench-smoke lint analyze-smoke
	@echo "verify: OK"
