PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke verify

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:
	REPRO_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_resilience.py -q

# The pre-merge gate: the full tier-1 suite plus a smoke-mode pass of
# the resilience benchmark (fault injection, retries, fallback).
verify: test bench-smoke
	@echo "verify: OK"
