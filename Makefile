PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-optimizer test-repair test-conc test-semcache test-shard bench bench-smoke lint lint-conc analyze-smoke trace-smoke verify

test:
	$(PYTHON) -m pytest -x -q

# The query-optimizer suites on their own: plan-equivalence harness,
# golden EXPLAIN footers, selectivity regressions.
test-optimizer:
	$(PYTHON) -m pytest tests/db/test_optimizer_equivalence.py tests/db/test_optimizer_explain.py tests/analysis/test_selectivity.py -q

# The self-correction suites on their own: repair-loop mechanics,
# worker-invariance with repairs firing, the repair handler, metered
# row-cap truncation, and a smoke pass of the E18 sweep.
test-repair:
	$(PYTHON) -m pytest tests/core/test_repair.py tests/serve/test_repair_determinism.py tests/lm/test_repair_handler.py tests/db/test_max_rows.py -q
	REPRO_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_repair.py -q

# The semantic-cache suites on their own: canonicalizer properties,
# cache/registry unit tests (including both retrieval-path regression
# suites), and the serve-integration equivalence/invariance tests.
test-semcache:
	$(PYTHON) -m pytest tests/serve/test_semantic.py tests/serve/test_semantic_serve.py tests/embed/test_hashing.py tests/vector/test_indexes.py -q

# The sharded-execution suites on their own: partitioning specs,
# shard/worker equivalence and pruning, shard-merge trace determinism,
# and a smoke pass of the E21 shard x fault sweep.
test-shard:
	$(PYTHON) -m pytest tests/db/test_sharding.py tests/obs/test_shard_trace.py -q
	REPRO_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_sharding.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:
	REPRO_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_resilience.py benchmarks/bench_repair.py benchmarks/bench_trace_overhead.py benchmarks/bench_udf_batching.py benchmarks/bench_optimizer.py benchmarks/bench_racecheck.py benchmarks/bench_semcache.py benchmarks/bench_sharding.py -q

# The concurrency suites on their own: static-analyzer golden rules
# and lockset properties, dynamic checker unit tests, and the serve
# worker-sweep replay under an installed RaceChecker.
test-conc:
	$(PYTHON) -m pytest tests/analysis/test_concurrency.py tests/obs/test_racecheck.py tests/serve/test_racecheck_serve.py -q

# Determinism linter over src/ (see repro.analysis.lint); exits
# nonzero on any unsuppressed finding.
lint:
	$(PYTHON) -m repro lint

# Static concurrency analyzer over src/ (lockset inference, shared
# state, lock order — see repro.analysis.concurrency); exits nonzero
# on any unwaived CONC finding.
lint-conc:
	$(PYTHON) -m repro lint --conc

# The static analyzer must accept a known-good query and reject a
# known-bad one, end to end through the CLI.
analyze-smoke:
	$(PYTHON) -m repro analyze "SELECT name FROM circuits LIMIT 3" --db formula_1
	! $(PYTHON) -m repro analyze "SELECT nope FROM circuits" --db formula_1

# Trace determinism smoke: the same traced demo workload must export
# byte-identical Chrome traces at different worker counts (the
# tentpole contract of repro.obs).
trace-smoke:
	@mkdir -p benchmarks/out
	$(PYTHON) -m repro trace --workers 1 --out benchmarks/out/trace-w1.json
	$(PYTHON) -m repro trace --workers 3 --out benchmarks/out/trace-w3.json
	cmp benchmarks/out/trace-w1.json benchmarks/out/trace-w3.json
	@rm -f benchmarks/out/trace-w1.json benchmarks/out/trace-w3.json
	@echo "trace-smoke: byte-identical across worker counts"

# The pre-merge gate: full tier-1 suite, the concurrency and
# semantic-cache suites, a smoke-mode pass of the resilience, repair,
# trace-overhead, race-check, and semantic-cache benchmarks, clean
# determinism-lint and concurrency baselines, an analyzer round-trip
# through the CLI, and the trace worker-invariance smoke.
verify: test test-conc test-semcache bench-smoke lint lint-conc analyze-smoke trace-smoke
	@echo "verify: OK"
